//! SQL tokenizer.

use qagview_common::{QagError, Result};

/// One lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the input at which the token starts.
    pub offset: usize,
}

/// Token kinds of the restricted SQL fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; identifiers are lowercased here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`QagError::Parse`] on unterminated strings, malformed numbers,
/// or unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(QagError::parse("expected `!=`", i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        offset: i,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(QagError::parse("unterminated string literal", start)),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| QagError::parse("malformed float", start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| QagError::parse("malformed integer", start))?,
                    )
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_ascii_lowercase()),
                    offset: start,
                });
            }
            other => {
                return Err(QagError::parse(
                    format!("unexpected character `{other}`"),
                    i,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers_lowercased() {
        assert_eq!(
            kinds("SELECT hdec FROM R"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("hdec".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("r".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("50 2.75 -7 -0.5"),
            vec![
                TokenKind::Int(50),
                TokenKind::Float(2.75),
                TokenKind::Int(-7),
                TokenKind::Float(-0.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds("'Student' 'O''Brien'"),
            vec![
                TokenKind::Str("Student".into()),
                TokenKind::Str("O'Brien".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn punctuation_and_star() {
        assert_eq!(
            kinds("count(*)"),
            vec![
                TokenKind::Ident("count".into()),
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unexpected_character_reports_offset() {
        let err = tokenize("a %").unwrap_err();
        assert_eq!(
            err.to_string(),
            "parse error at byte 2: unexpected character `%`"
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(tokenize("!").is_err());
    }
}
