//! Abstract syntax of the restricted SQL fragment.

/// Aggregate functions supported in the `SELECT` and `HAVING` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `AVG(col)`
    Avg,
    /// `SUM(col)`
    Sum,
    /// `COUNT(col)` or `COUNT(*)`
    Count,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

impl AggFunc {
    /// Keyword spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Avg => "AVG",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Literal constants in predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// String constant.
    Str(String),
    /// Boolean constant (`TRUE` / `FALSE`).
    Bool(bool),
}

/// One `WHERE` conjunct: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub value: Literal,
}

/// An aggregate expression `func(col)` / `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Aggregated column; `None` encodes `*` (only valid for `COUNT`).
    pub column: Option<String>,
}

/// One `HAVING` conjunct: `agg op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingPredicate {
    /// Left-hand aggregate.
    pub agg: AggExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant (numeric).
    pub value: Literal,
}

/// `ORDER BY` direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderDir {
    /// Ascending.
    Asc,
    /// Descending (the paper's default: highest scores first).
    Desc,
}

/// A parsed `SELECT` statement of the supported shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Plain (grouping) columns projected before the aggregate.
    pub group_columns: Vec<String>,
    /// The single aggregate projection.
    pub agg: AggExpr,
    /// Output alias of the aggregate (defaults to `val`).
    pub agg_alias: String,
    /// Source table name.
    pub from: String,
    /// `WHERE` conjuncts (ANDed).
    pub where_clause: Vec<Predicate>,
    /// `GROUP BY` columns as written.
    pub group_by: Vec<String>,
    /// `HAVING` conjuncts (ANDed).
    pub having: Vec<HavingPredicate>,
    /// `ORDER BY` target: must reference the aggregate alias when present.
    pub order_by: Option<(String, OrderDir)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::Avg.name(), "AVG");
        assert_eq!(AggFunc::Sum.name(), "SUM");
        assert_eq!(AggFunc::Count.name(), "COUNT");
        assert_eq!(AggFunc::Min.name(), "MIN");
        assert_eq!(AggFunc::Max.name(), "MAX");
    }

    #[test]
    fn ast_nodes_are_comparable() {
        let p1 = Predicate {
            column: "g".into(),
            op: CmpOp::Eq,
            value: Literal::Int(1),
        };
        let p2 = Predicate {
            column: "g".into(),
            op: CmpOp::Eq,
            value: Literal::Int(1),
        };
        assert_eq!(p1, p2);
    }
}
