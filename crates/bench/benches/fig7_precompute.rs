//! Fig. 7: precomputation cost vs single runs vs retrieval (synthetic N
//! sweep).
//!
//! Paper shape: per-retrieval cost is orders of magnitude below a fresh
//! algorithm run, which is itself far below initialization; repeated
//! exploration amortizes the precomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::synthetic_answers;
use qagview_core::{EvalMode, Params};
use qagview_interactive::{PrecomputeConfig, Precomputed};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_precompute");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));

    for n in [927usize, 2087] {
        let answers = synthetic_answers(n, 8, 7).expect("workload");
        let l = 500.min(answers.len());
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(20, l, 2);

        group.bench_with_input(BenchmarkId::new("initialization", n), &l, |b, &l| {
            b.iter(|| black_box(CandidateIndex::build(&answers, l).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("single_hybrid", n), &params, |b, p| {
            b.iter(|| {
                black_box(qagview_core::hybrid(&answers, &index, p, EvalMode::Delta).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("precompute_plane", n), &l, |b, _| {
            b.iter(|| {
                black_box(
                    Precomputed::build_with_index(
                        &answers,
                        index.clone(),
                        PrecomputeConfig {
                            k_min: 1,
                            k_max: 20,
                            d_min: 2,
                            d_max: 2,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: 1,
                k_max: 20,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("retrieval", n), &pre, |b, pre| {
            b.iter(|| black_box(pre.solution(12, 2).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
