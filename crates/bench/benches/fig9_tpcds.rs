//! Fig. 9: TPC-DS scalability — initialization, single run, precompute and
//! retrieval at N in the tens of thousands.
//!
//! Paper shape: everything stays interactive (seconds at worst) even at
//! N ≈ 47k; retrieval stays in the milliseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::tpcds_answers;
use qagview_core::{EvalMode, Params};
use qagview_interactive::{PrecomputeConfig, Precomputed};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A 1/4-scale workload keeps the bench loop tractable while preserving
    // the shape; `paper-experiments fig9` runs the full N ≈ 51k point.
    let answers = tpcds_answers(72_010, 1, 7).expect("workload");
    let mut group = c.benchmark_group("fig9_tpcds");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4));
    group.throughput(criterion::Throughput::Elements(answers.len() as u64));

    for l in [500usize, 1000] {
        let l = l.min(answers.len());
        group.bench_with_input(BenchmarkId::new("initialization", l), &l, |b, &l| {
            b.iter(|| black_box(CandidateIndex::build(&answers, l).unwrap()))
        });
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(20, l, 2);
        group.bench_with_input(BenchmarkId::new("single_hybrid", l), &params, |b, p| {
            b.iter(|| {
                black_box(qagview_core::hybrid(&answers, &index, p, EvalMode::Delta).unwrap())
            })
        });
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: 1,
                k_max: 20,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("retrieval", l), &pre, |b, pre| {
            b.iter(|| black_box(pre.solution(20, 2).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
