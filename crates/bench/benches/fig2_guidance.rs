//! Fig. 2 / §7.2: generation time of the parameter-selection guidance
//! visualization data.
//!
//! Paper claim: 20–40 ms for m in 4..10 at N ≈ 2087 — interactive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::movielens_answers;
use qagview_interactive::{PrecomputeConfig, Precomputed};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_guidance");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for (m, having) in [(4usize, 30usize), (6, 30), (8, 20), (10, 8)] {
        let answers = movielens_answers(m, having, 42).expect("workload");
        let l = 15.min(answers.len());
        let d_max = 3.min(m);
        group.bench_with_input(BenchmarkId::new("guidance_generation", m), &l, |b, &l| {
            b.iter(|| {
                let pre = Precomputed::build(
                    &answers,
                    l,
                    PrecomputeConfig {
                        k_min: 2,
                        k_max: 15,
                        d_min: 1,
                        d_max,
                        ..Default::default()
                    },
                )
                .unwrap();
                black_box(pre.guidance())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
