//! Fig. 5(a): runtime of brute force vs the heuristics at L=5, D=3.
//!
//! The paper's qualitative result: BF explodes with k (2.5 h at k=4 on
//! their prototype) while every heuristic stays interactive; the heuristics'
//! values are near-optimal (checked in `qagview-core` tests, value series in
//! `paper-experiments fig5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::example_1_1_answers;
use qagview_core::{
    bottom_up, brute_force, fixed_order, BottomUpOptions, BruteForceOptions, EvalMode, Params,
    Seeding,
};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let answers = example_1_1_answers(42).expect("workload");
    let l = 5;
    let index = CandidateIndex::build(&answers, l).expect("index");
    let mut group = c.benchmark_group("fig5_bruteforce");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));

    for k in [2usize, 3, 4] {
        let params = Params::new(k, l, 3);
        group.bench_with_input(BenchmarkId::new("brute_force", k), &params, |b, p| {
            b.iter(|| {
                black_box(brute_force(&answers, &index, p, BruteForceOptions::default()).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("bottom_up", k), &params, |b, p| {
            b.iter(|| {
                black_box(bottom_up(&answers, &index, p, BottomUpOptions::default()).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed_order", k), &params, |b, p| {
            b.iter(|| {
                black_box(fixed_order(&answers, &index, p, Seeding::None, EvalMode::Delta).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", k), &params, |b, p| {
            b.iter(|| {
                black_box(qagview_core::hybrid(&answers, &index, p, EvalMode::Delta).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
