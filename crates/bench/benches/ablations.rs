//! Ablations of the design choices DESIGN.md calls out (§5.1/§5.2/§5.3
//! variants): Bottom-Up start state and greedy rule, Fixed-Order seedings,
//! and the Hybrid pool factor.
//!
//! The paper's claim for all of them: "efficiency and quality comparable or
//! worse than the basic" algorithms — these benches measure the efficiency
//! half; `paper-experiments fig5` reports the quality half.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::movielens_answers;
use qagview_core::{
    bottom_up, fixed_order, BottomUpOptions, BottomUpStart, EvalMode, GreedyRule, Params, Seeding,
};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench_bottom_up_variants(c: &mut Criterion) {
    let answers = movielens_answers(8, 20, 42).expect("workload");
    let l = 40.min(answers.len());
    let index = CandidateIndex::build(&answers, l).expect("index");
    let params = Params::new(5, l, 3);
    let mut group = c.benchmark_group("ablation_bottom_up_variants");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let variants: [(&str, BottomUpOptions); 3] = [
        ("standard", BottomUpOptions::default()),
        (
            "level_start",
            BottomUpOptions {
                start: BottomUpStart::LevelDMinus1,
                ..Default::default()
            },
        ),
        (
            "pair_avg_rule",
            BottomUpOptions {
                rule: GreedyRule::PairAvg,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| black_box(bottom_up(&answers, &index, &params, *opts).unwrap()))
        });
    }
    group.finish();
}

fn bench_fixed_order_seedings(c: &mut Criterion) {
    let answers = movielens_answers(8, 20, 42).expect("workload");
    let l = 40.min(answers.len());
    let index = CandidateIndex::build(&answers, l).expect("index");
    let params = Params::new(5, l, 3);
    let mut group = c.benchmark_group("ablation_fixed_order_seedings");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let seedings: [(&str, Seeding); 3] = [
        ("plain", Seeding::None),
        ("random", Seeding::Random { seed: 7 }),
        (
            "kmeans",
            Seeding::KMeans {
                seed: 7,
                max_iter: 20,
            },
        ),
    ];
    for (name, seeding) in seedings {
        group.bench_with_input(BenchmarkId::from_parameter(name), &seeding, |b, s| {
            b.iter(|| {
                black_box(fixed_order(&answers, &index, &params, *s, EvalMode::Delta).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_hybrid_pool_factor(c: &mut Criterion) {
    let answers = movielens_answers(8, 20, 42).expect("workload");
    let l = 40.min(answers.len());
    let index = CandidateIndex::build(&answers, l).expect("index");
    let params = Params::new(5, l, 3);
    let mut group = c.benchmark_group("ablation_hybrid_pool_factor");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for factor in [2usize, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| {
                black_box(
                    qagview_core::hybrid_with(&answers, &index, &params, f, EvalMode::Delta)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bottom_up_variants,
    bench_fixed_order_seedings,
    bench_hybrid_pool_factor
);
criterion_main!(benches);
