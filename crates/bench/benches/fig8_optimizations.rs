//! Fig. 8: the two §6.3 optimization ablations.
//!
//! (a) indexed candidate generation vs the naive per-candidate scan;
//! (b) Delta-Judgment marginals vs naive recomputation.
//! Paper shape: both optimized paths win by one to three orders of
//! magnitude, growing with L.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::synthetic_answers;
use qagview_core::{EvalMode, Params};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench_candidate_generation(c: &mut Criterion) {
    let answers = synthetic_answers(2087, 8, 7).expect("workload");
    let mut group = c.benchmark_group("fig8a_candidate_generation");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for l in [100usize, 200] {
        group.bench_with_input(BenchmarkId::new("with_optimization", l), &l, |b, &l| {
            b.iter(|| black_box(CandidateIndex::build(&answers, l).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("without_optimization", l), &l, |b, &l| {
            b.iter(|| black_box(CandidateIndex::build_naive(&answers, l).unwrap()))
        });
    }
    group.finish();
}

fn bench_delta_judgment(c: &mut Criterion) {
    let answers = synthetic_answers(2087, 8, 7).expect("workload");
    let mut group = c.benchmark_group("fig8b_delta_judgment");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for l in [200usize, 500] {
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(20, l, 2);
        group.bench_with_input(BenchmarkId::new("with_delta", l), &params, |b, p| {
            b.iter(|| {
                black_box(
                    qagview_core::hybrid_with(&answers, &index, p, 5, EvalMode::Delta).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("without_delta", l), &params, |b, p| {
            b.iter(|| {
                black_box(
                    qagview_core::hybrid_with(&answers, &index, p, 5, EvalMode::Naive).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_generation, bench_delta_judgment);
criterion_main!(benches);
