//! Fig. 16 / App. A.7.3: optimal cluster placement — Hungarian matching vs
//! brute-force permutation search, plus layout-quality metrics.
//!
//! Paper shape: matching solves in <10 ms where brute force needs >2 s at
//! k = 10; the matched layout strictly dominates the default on total
//! distance and crossings (series printed by `paper-experiments fig16`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview::prelude::*;
use qagview::viz::hungarian::{min_cost_assignment, min_cost_assignment_brute};
use qagview_bench::movielens_answers;
use std::hint::black_box;

fn cost_matrix(tr: &Transition) -> Vec<Vec<f64>> {
    let n = tr.right_len();
    (0..n)
        .map(|u| {
            (0..n)
                .map(|v| {
                    (0..tr.left_len())
                        .map(|i| tr.overlaps[i][u] as f64 * (i as f64 - v as f64).abs())
                        .sum()
                })
                .collect()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let answers = movielens_answers(4, 20, 42).expect("workload");
    let mut group = c.benchmark_group("fig16_viz");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));

    for (k, l1, l2) in [(5usize, 8usize, 10usize), (10, 15, 20), (20, 30, 40)] {
        let l1 = l1.min(answers.len());
        let l2 = l2.min(answers.len());
        let s1 = Summarizer::new(&answers, l1).unwrap().hybrid(k, 2).unwrap();
        let s2 = Summarizer::new(&answers, l2).unwrap().hybrid(k, 2).unwrap();
        let tr = Transition::between(&answers, &s1, &s2, l2);
        let cost = cost_matrix(&tr);
        group.bench_with_input(BenchmarkId::new("hungarian", k), &cost, |b, cost| {
            b.iter(|| black_box(min_cost_assignment(cost)))
        });
        // Brute force only where the factorial stays tractable.
        if cost.len() <= 8 {
            group.bench_with_input(BenchmarkId::new("brute_force", k), &cost, |b, cost| {
                b.iter(|| black_box(min_cost_assignment_brute(cost)))
            });
        }
        group.bench_with_input(BenchmarkId::new("full_placement", k), &tr, |b, tr| {
            b.iter(|| black_box(optimal_placement(tr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
