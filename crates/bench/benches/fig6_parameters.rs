//! Fig. 6: algorithm runtime as k, L, D, and m vary (MovieLens workload).
//!
//! Paper shape: Fixed-Order fastest and nearly flat, Bottom-Up slowest and
//! growing with L, Hybrid in between; initialization grows steeply with m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qagview_bench::movielens_answers;
use qagview_core::{bottom_up, fixed_order, BottomUpOptions, EvalMode, Params, Seeding};
use qagview_lattice::CandidateIndex;
use std::hint::black_box;

fn bench_vary_l(c: &mut Criterion) {
    let answers = movielens_answers(8, 20, 42).expect("workload");
    let mut group = c.benchmark_group("fig6_vary_L");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for l in [9usize, 27, 81] {
        let l = l.min(answers.len());
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(3, l, 3);
        group.bench_with_input(BenchmarkId::new("bottom_up", l), &params, |b, p| {
            b.iter(|| {
                black_box(bottom_up(&answers, &index, p, BottomUpOptions::default()).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed_order", l), &params, |b, p| {
            b.iter(|| {
                black_box(fixed_order(&answers, &index, p, Seeding::None, EvalMode::Delta).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", l), &params, |b, p| {
            b.iter(|| {
                black_box(qagview_core::hybrid(&answers, &index, p, EvalMode::Delta).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_vary_d(c: &mut Criterion) {
    let answers = movielens_answers(8, 20, 42).expect("workload");
    let l = 40.min(answers.len());
    let index = CandidateIndex::build(&answers, l).expect("index");
    let mut group = c.benchmark_group("fig6_vary_D");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for d in [1usize, 3, 6] {
        let params = Params::new(10, l, d);
        group.bench_with_input(BenchmarkId::new("bottom_up", d), &params, |b, p| {
            b.iter(|| {
                black_box(bottom_up(&answers, &index, p, BottomUpOptions::default()).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", d), &params, |b, p| {
            b.iter(|| {
                black_box(qagview_core::hybrid(&answers, &index, p, EvalMode::Delta).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_init_vary_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_init_vary_m");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for (m, having) in [(4usize, 30usize), (6, 30), (8, 20), (10, 8)] {
        let answers = movielens_answers(m, having, 42).expect("workload");
        let l = 20.min(answers.len());
        group.bench_with_input(BenchmarkId::new("initialization", m), &l, |b, &l| {
            b.iter(|| black_box(CandidateIndex::build(&answers, l).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_l, bench_vary_d, bench_init_vary_m);
criterion_main!(benches);
