//! CI chaos driver: exhaustively re-run the save→load→explore script
//! with one injected fault per `(op index, fault kind)` pair, over a
//! fixed grid of retry-jitter seeds, and write a machine-readable event
//! log for the CI artifact.
//!
//! ```text
//! chaos [<event-log.json>]     # default: CHAOS_events.json in the cwd
//! ```
//!
//! Every trial must satisfy the robustness contract the test-suite
//! harness (`crates/interactive/tests/chaos.rs`) property-checks:
//!
//! * no panic — a fault surfaces as a typed error or is absorbed;
//! * no command failure — the store is a pure cache, so no store fault
//!   may fail an exploration command;
//! * view digests (f64 bits included) identical to the no-fault baseline,
//!   both *during* the fault and after it clears (simulated reboot).
//!
//! Any violation is recorded in the event log and fails the process with
//! a nonzero exit, failing the CI job.

use qagview_common::io::ALL_FAULT_KINDS;
use qagview_common::{FaultIo, FaultPlan, FxHasher, RetryPolicy};
use qagview_interactive::{ExploreCommand, ExploreResponse, Explorer, ExplorerConfig, SessionSpec};
use qagview_storage::{Catalog, Cell, ColumnType, Schema, TableBuilder};
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Retry-jitter seeds the grid sweeps: backoff jitter must never change
/// what the user sees, only when the disk is re-poked.
const SEEDS: [u64; 3] = [1807, 42, 0xdecaf];

const SQL: &str = "SELECT genre, who, AVG(rating) AS val FROM ratings \
                   GROUP BY genre, who HAVING count(*) > 0 ORDER BY val DESC";

fn catalog() -> Catalog {
    let schema = Schema::from_pairs(&[
        ("genre", ColumnType::Str),
        ("who", ColumnType::Str),
        ("rating", ColumnType::Float),
    ])
    .expect("schema");
    let mut b = TableBuilder::new(schema);
    let rows: &[(&str, &str, f64)] = &[
        ("adventure", "student", 4.8),
        ("adventure", "student", 4.4),
        ("adventure", "coder", 4.3),
        ("adventure", "coder", 4.1),
        ("romance", "student", 2.0),
        ("romance", "coder", 1.6),
        ("romance", "coder", 1.2),
        ("western", "student", 3.0),
    ];
    for &(g, w, r) in rows {
        b.push_row(vec![g.into(), w.into(), Cell::Float(r)])
            .expect("row");
    }
    let mut c = Catalog::new();
    c.register("ratings", b.finish());
    c
}

fn digest(r: &ExploreResponse) -> u64 {
    let mut h = FxHasher::default();
    h.write(r.state.sql.as_bytes());
    h.write_usize(r.state.k);
    h.write_usize(r.state.l);
    h.write_usize(r.state.d);
    for c in &r.summary.clusters {
        h.write(c.label.as_bytes());
        h.write_u8(0xff);
        h.write_usize(c.size);
        h.write_usize(c.top_l);
        h.write_u64(c.sum.to_bits());
        h.write_u64(c.avg.to_bits());
    }
    h.write_usize(r.summary.covered);
    h.write_usize(r.summary.total);
    h.write_u64(r.summary.avg.to_bits());
    for series in &r.plot.series {
        h.write_usize(series.d);
        for &v in &series.avg_by_k {
            h.write_u64(v.to_bits());
        }
    }
    h.finish()
}

fn engine_over(io: &Arc<FaultIo>, dir: &Path, catalog: Arc<Catalog>, seed: u64) -> Arc<Explorer> {
    Arc::new(Explorer::from_shared(
        catalog,
        ExplorerConfig {
            store_dir: Some(dir.to_path_buf()),
            store_io: io.clone(),
            retry: RetryPolicy {
                seed,
                ..Default::default()
            },
            parallel_planes: false,
            ..Default::default()
        },
    ))
}

/// The canonical script: two simulated processes over one store
/// directory. Returns per-command view digests, or the command error.
fn run_script(
    io: &Arc<FaultIo>,
    dir: &Path,
    catalog: &Arc<Catalog>,
    seed: u64,
) -> Result<Vec<u64>, String> {
    let mut digests = Vec::new();
    for _process in 0..2 {
        let engine = engine_over(io, dir, Arc::clone(catalog), seed);
        let mut session = engine
            .open_session(SessionSpec::default())
            .expect("open session");
        for cmd in [
            ExploreCommand::SetQuery(SQL.into()),
            ExploreCommand::SetK(3),
        ] {
            match session.apply(cmd) {
                Ok(r) => digests.push(digest(&r)),
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(digests)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qag-chaos-bin-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear temp dir");
    }
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct Trial {
    seed: u64,
    at_op: u64,
    kind: String,
    sleeps: usize,
    faults_fired: usize,
    violation: Option<String>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_event_log(path: &Path, total_ops: u64, trials: &[Trial]) {
    let mut out = String::new();
    let violations = trials.iter().filter(|t| t.violation.is_some()).count();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"seeds\": [{}],\n",
        SEEDS.map(|s| s.to_string()).join(", ")
    ));
    out.push_str(&format!("  \"baseline_ops\": {total_ops},\n"));
    out.push_str(&format!("  \"fault_kinds\": {},\n", ALL_FAULT_KINDS.len()));
    out.push_str(&format!("  \"trials\": {},\n", trials.len()));
    out.push_str(&format!("  \"violations\": {violations},\n"));
    out.push_str("  \"events\": [\n");
    for (i, t) in trials.iter().enumerate() {
        let sep = if i + 1 == trials.len() { "" } else { "," };
        let violation = match &t.violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"seed\": {}, \"op\": {}, \"kind\": \"{}\", \"sleeps\": {}, \
             \"faults_fired\": {}, \"violation\": {}}}{}\n",
            t.seed, t.at_op, t.kind, t.sleeps, t.faults_fired, violation, sep
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write event log");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let log_path = match args.as_slice() {
        [] => PathBuf::from("CHAOS_events.json"),
        [p] => PathBuf::from(p),
        _ => {
            eprintln!("usage: chaos [<event-log.json>]");
            return ExitCode::from(2);
        }
    };
    let catalog = Arc::new(catalog());
    let t0 = std::time::Instant::now();

    // Baseline: learn the op space and the expected digests. The op
    // sequence is deterministic, so one baseline serves every seed.
    let baseline_dir = temp_dir("baseline");
    let recorder = Arc::new(FaultIo::new());
    let baseline = run_script(&recorder, &baseline_dir, &catalog, SEEDS[0]).expect("baseline run");
    let total_ops = recorder.ops_seen();
    std::fs::remove_dir_all(&baseline_dir).expect("clean baseline dir");
    println!(
        "baseline: {total_ops} I/O ops, {} responses",
        baseline.len()
    );

    let mut trials = Vec::new();
    for seed in SEEDS {
        for at_op in 0..total_ops {
            for kind in ALL_FAULT_KINDS {
                let dir = temp_dir(&format!("s{seed}-t{at_op}-{kind}"));
                let io = Arc::new(FaultIo::with_plan(vec![FaultPlan { at_op, kind }]));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_script(&io, &dir, &catalog, seed)
                }));
                let mut violation = match outcome {
                    Err(_) => Some("panic".to_string()),
                    Ok(Err(e)) => Some(format!("command failed: {e}")),
                    Ok(Ok(d)) if d != baseline => {
                        Some("view diverged from baseline under fault".to_string())
                    }
                    Ok(Ok(_)) => None,
                };
                // Fault cleared: reboot and demand byte-identical views
                // from whatever the fault left on disk.
                if violation.is_none() {
                    io.reboot();
                    violation = match run_script(&io, &dir, &catalog, seed) {
                        Err(e) => Some(format!("post-fault command failed: {e}")),
                        Ok(d) if d != baseline => {
                            Some("post-fault recovery diverged from baseline".to_string())
                        }
                        Ok(_) => None,
                    };
                }
                if let Some(v) = &violation {
                    eprintln!("VIOLATION seed={seed} op={at_op} kind={kind}: {v}");
                }
                trials.push(Trial {
                    seed,
                    at_op,
                    kind: kind.to_string(),
                    sleeps: io.sleeps().len(),
                    faults_fired: io.events().iter().filter(|e| e.fault.is_some()).count(),
                    violation,
                });
                std::fs::remove_dir_all(&dir).expect("clean trial dir");
            }
        }
    }

    write_event_log(&log_path, total_ops, &trials);
    let violations = trials.iter().filter(|t| t.violation.is_some()).count();
    println!(
        "{} trials ({} seeds × {} ops × {} kinds) in {:?}: {} violations; log at {}",
        trials.len(),
        SEEDS.len(),
        total_ops,
        ALL_FAULT_KINDS.len(),
        t0.elapsed(),
        violations,
        log_path.display()
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
