//! Load generator and latency gate for the session server.
//!
//! Two phases, both against a server warm-booted from a `.qag` store:
//!
//! * **Load** — hundreds of concurrently live scripted sessions (slider
//!   sweeps, knob turns, drill-downs) driven over TCP by a pool of
//!   keep-alive clients, with the resident-session cap set well below the
//!   session count so eviction-to-checkpoint and transparent restore churn
//!   constantly under load. Every response's view digest is checked
//!   against a sequential bare-`Explorer` replay of the same script —
//!   byte-identical or it counts as a failure, and any failure fails the
//!   run.
//! * **Latency** — warm threshold ticks measured in-process (the same
//!   `Gateway::handle_bytes` bytes, no socket) and over TCP from a small
//!   client pool. The gate: TCP p99 must stay within 10× the in-process
//!   median (`latency_headroom = 10 · inproc_median / tcp_p99 ≥ 1`).
//!
//! With `--chaos`, the generator instead smoke-runs one faulted pass: a
//! server whose connections are wrapped in a scripted [`NetScript`]
//! (short reads/writes, a slow drip, a stall, a reset spread through the
//! pass) driven by a reconnect-and-retry client; every confirmed view
//! digest must still match the oracle, at least one fault must actually
//! fire, and nothing else runs.
//!
//! With `--bench`, the resulting `serve_tick` section is merged into
//! `BENCH_hotpath.json` at the repository root, where the
//! `perf_trajectory` gate enforces `serve_tick.latency_headroom` and
//! `serve_tick.throughput_ticks_per_s` against the committed baseline.
//!
//! ```text
//! loadgen [--sessions N] [--clients C] [--tick-clients T] [--rows R] [--bench] [--chaos]
//! ```

use qagview_bench::json::{self, Json};
use qagview_bench::repo_root;
use qagview_common::wire::checksum64;
use qagview_datagen::movielens::{self, MovieLensConfig};
use qagview_interactive::{ExploreCommand, ExploreResponse, Explorer, ExplorerConfig, SessionSpec};
use qagview_lattice::Pattern;
use qagview_serve::{
    view_json, Gateway, GatewayConfig, NetFaultKind, NetScript, Server, ServerConfig, SessionConfig,
};
use qagview_storage::Catalog;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SQL: &str = "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
                   GROUP BY hdec, agegrp, gender, occupation \
                   HAVING count(*) > 10 ORDER BY val DESC";
const ARITY: usize = 4;

/// One step of a session script. Drill steps are computed from the
/// previous response (the first cluster of the current summary), so the
/// generator sends exactly what a UI tracking the view would send — and
/// the sequential oracle derives the same pattern from the same view.
#[derive(Clone)]
enum Step {
    Body(String),
    DrillFirst,
    DrillBack,
}

fn set(cmd: &str, value: impl std::fmt::Display) -> Step {
    Step::Body(format!(r#"{{"cmd":"{cmd}","value":{value}}}"#))
}

/// The scripted session variants: every session opens the paper query,
/// then sweeps sliders, turns knobs, and drills. Thresholds stay in a
/// band the 20k-row relation supports at every position.
fn scripts() -> Vec<Vec<Step>> {
    let open = Step::Body(format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#));
    let base = |tail: Vec<Step>| -> Vec<Step> {
        let mut s = vec![open.clone(), set("set_k", 6), set("set_l", 40)];
        s.extend(tail);
        s
    };
    vec![
        base(vec![
            set("set_threshold", 20.5),
            set("set_threshold", 20.0),
            set("set_k", 4),
        ]),
        base(vec![set("set_d", 1), Step::DrillFirst, Step::DrillBack]),
        base(vec![set("set_k", 8), set("set_l", 60), set("set_k", 5)]),
        base(vec![
            set("set_threshold", 30.5),
            Step::DrillFirst,
            Step::DrillBack,
        ]),
        base(vec![
            set("set_d", 2),
            set("set_threshold", 20.5),
            set("set_d", 1),
        ]),
        base(vec![Step::DrillFirst, set("set_k", 4), Step::DrillBack]),
        base(vec![
            set("set_l", 60),
            set("set_threshold", 30.5),
            set("set_threshold", 30.0),
        ]),
        base(vec![set("set_k", 3), set("set_d", 1), Step::DrillFirst]),
    ]
}

fn catalog(rows: usize) -> Arc<Catalog> {
    let table = movielens::generate(&MovieLensConfig {
        ratings: rows,
        ..Default::default()
    })
    .expect("movielens table");
    let mut c = Catalog::new();
    c.register("ratingtable", table);
    Arc::new(c)
}

fn digest_hex(resp: &ExploreResponse) -> String {
    format!("{:016x}", checksum64(view_json(resp).to_text().as_bytes()))
}

/// The view digest with the `transition` panel dropped. A transition
/// describes the delta from the *previous* view, so a command resent
/// after a transport failure (absolute state, identical summary/plot)
/// legitimately reports a self-transition; retried steps are checked
/// against this stable digest instead of the full one.
fn stable_digest_hex(view: &Json) -> String {
    let mut v = view.clone();
    if let Json::Obj(map) = &mut v {
        map.remove("transition");
    }
    format!("{:016x}", checksum64(v.to_text().as_bytes()))
}

/// Per-step oracle digests: the full view and its transition-less twin.
struct OracleStep {
    full: String,
    stable: String,
}

/// Sequential oracle: replay every script against a bare in-process session
/// and return the per-step view digests the server must reproduce.
fn oracle_digests(catalog: &Arc<Catalog>, scripts: &[Vec<Step>]) -> Vec<Vec<OracleStep>> {
    let engine = Arc::new(Explorer::from_shared(
        Arc::clone(catalog),
        ExplorerConfig::default(),
    ));
    scripts
        .iter()
        .map(|script| {
            let mut session = engine
                .open_session(SessionSpec::default())
                .expect("open oracle session");
            let mut prev: Option<ExploreResponse> = None;
            script
                .iter()
                .map(|step| {
                    let cmd = match step {
                        Step::Body(body) => {
                            qagview_serve::parse_command(body.as_bytes()).expect("script command")
                        }
                        Step::DrillFirst => {
                            let p = prev
                                .as_ref()
                                .and_then(|r| r.summary.clusters.first())
                                .map(|c| c.pattern.clone())
                                .expect("a cluster to drill into");
                            ExploreCommand::DrillDown(p)
                        }
                        Step::DrillBack => ExploreCommand::DrillDown(Pattern::all_star(ARITY)),
                    };
                    let resp = session.apply(cmd).expect("oracle replay step");
                    let step = OracleStep {
                        full: digest_hex(&resp),
                        stable: stable_digest_hex(&view_json(&resp)),
                    };
                    prev = Some(resp);
                    step
                })
                .collect()
        })
        .collect()
}

/// A minimal blocking keep-alive HTTP/1.1 client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(60)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Like [`Client::request`] but transport failures are values — the
    /// chaos pass is supposed to survive them.
    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "content length")
                })?;
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf)?;
        let body = String::from_utf8(buf)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8"))?;
        Ok((status, body))
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("send head");
        self.writer.write_all(body).expect("send body");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h).expect("header line");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content length");
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf).expect("body");
        (status, String::from_utf8(buf).expect("utf-8 body"))
    }
}

/// Materialize one step's request body, deriving drill patterns from the
/// previous response exactly as the oracle does.
fn step_body(step: &Step, prev: Option<&str>) -> String {
    match step {
        Step::Body(body) => body.clone(),
        Step::DrillFirst => {
            let doc = json::parse(prev.expect("a previous response")).expect("response JSON");
            let pattern = doc
                .path("view.summary.clusters")
                .and_then(|c| c.items().first())
                .and_then(|c| c.get("pattern"))
                .expect("a cluster pattern")
                .to_text();
            format!(r#"{{"cmd":"drill_down","pattern":{pattern}}}"#)
        }
        Step::DrillBack => {
            let stars = ["null"; ARITY].join(",");
            format!(r#"{{"cmd":"drill_down","pattern":[{stars}]}}"#)
        }
    }
}

fn digest_of(response_body: &str) -> Option<String> {
    json::parse(response_body)
        .ok()?
        .get("digest")
        .and_then(|d| d.as_str().map(str::to_string))
}

struct LoadOutcome {
    commands: u64,
    failures: u64,
    wall_s: f64,
}

/// Phase 1: `sessions` concurrently live sessions, driven round-robin by
/// `clients` keep-alive connections, under a resident cap that forces
/// eviction/restore churn. Returns commands issued, failures, wall time.
fn run_load(
    addr: SocketAddr,
    sessions: usize,
    clients: usize,
    scripts: &[Vec<Step>],
    oracle: &[Vec<OracleStep>],
) -> LoadOutcome {
    let max_steps = scripts.iter().map(Vec::len).max().unwrap_or(0);
    let t = Instant::now();
    let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    // This worker owns every session whose index ≡ c.
                    let mine: Vec<usize> = (0..sessions).filter(|s| s % clients == c).collect();
                    let mut ids = Vec::with_capacity(mine.len());
                    for _ in &mine {
                        let (status, body) = client.request("POST", "/api/session", b"");
                        assert_eq!(status, 200, "session create refused: {body}");
                        let id = json::parse(&body)
                            .ok()
                            .and_then(|d| {
                                d.get("session").and_then(|s| s.as_str().map(String::from))
                            })
                            .expect("session id");
                        ids.push(id);
                    }
                    let mut prev: Vec<Option<String>> = vec![None; mine.len()];
                    let (mut commands, mut failures) = (0u64, 0u64);
                    // Round-robin over this worker's sessions keeps all of
                    // them live at once — the whole pool stays concurrent.
                    #[allow(clippy::needless_range_loop)]
                    for step_idx in 0..max_steps {
                        for (slot, &s) in mine.iter().enumerate() {
                            let variant = s % scripts.len();
                            let Some(step) = scripts[variant].get(step_idx) else {
                                continue;
                            };
                            let body = step_body(step, prev[slot].as_deref());
                            let path = format!("/api/session/{}/command", ids[slot]);
                            let (status, resp) = client.request("POST", &path, body.as_bytes());
                            commands += 1;
                            let expected = &oracle[variant][step_idx].full;
                            if status != 200 || digest_of(&resp).as_ref() != Some(expected) {
                                failures += 1;
                                eprintln!(
                                    "FAIL session {s} step {step_idx}: status {status}, {resp}"
                                );
                            }
                            prev[slot] = Some(resp);
                        }
                    }
                    (commands, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client worker"))
            .collect()
    });
    LoadOutcome {
        commands: per_client.iter().map(|&(c, _)| c).sum(),
        failures: per_client.iter().map(|&(_, f)| f).sum(),
        wall_s: t.elapsed().as_secs_f64(),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Warm one session up to the steady threshold-flip state and return the
/// two tick bodies.
const WARM_CMDS: [&str; 4] = [
    // set_query body is built at runtime (SQL interpolation).
    "",
    r#"{"cmd":"set_k","value":6}"#,
    r#"{"cmd":"set_threshold","value":20.5}"#,
    r#"{"cmd":"set_threshold","value":20.0}"#,
];
const TICKS: [&str; 2] = [
    r#"{"cmd":"set_threshold","value":20.5}"#,
    r#"{"cmd":"set_threshold","value":20.0}"#,
];

fn warm_bodies() -> Vec<String> {
    let mut v = vec![format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#)];
    v.extend(WARM_CMDS[1..].iter().map(|s| (*s).to_string()));
    v
}

/// Phase 2a: warm tick latency through `Gateway::handle_bytes` — the same
/// parse/route/serialize work as a TCP exchange, minus the socket.
fn inproc_tick_median_ms(gateway: &Gateway, reps: usize) -> f64 {
    let frame = |method: &str, path: &str, body: &str| {
        format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    };
    let created = gateway.handle_bytes(&frame("POST", "/api/session", ""));
    let body_at = created
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header end")
        + 4;
    let id = json::parse(std::str::from_utf8(&created[body_at..]).expect("utf-8"))
        .ok()
        .and_then(|d| d.get("session").and_then(|s| s.as_str().map(String::from)))
        .expect("session id");
    let path = format!("/api/session/{id}/command");
    for body in warm_bodies() {
        let resp = gateway.handle_bytes(&frame("POST", &path, &body));
        assert!(resp.starts_with(b"HTTP/1.1 200"), "warmup refused");
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|i| {
            let raw = frame("POST", &path, TICKS[i % 2]);
            let t = Instant::now();
            let resp = gateway.handle_bytes(&raw);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert!(resp.starts_with(b"HTTP/1.1 200"), "tick refused");
            ms
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Phase 2b: the same warm ticks over TCP from `clients` concurrent
/// connections. Returns (p50, p99, ticks/s).
fn tcp_ticks(addr: SocketAddr, clients: usize, ticks_each: usize) -> (f64, f64, f64) {
    let t = Instant::now();
    let mut all: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let (status, body) = client.request("POST", "/api/session", b"");
                    assert_eq!(status, 200, "{body}");
                    let id = json::parse(&body)
                        .ok()
                        .and_then(|d| d.get("session").and_then(|s| s.as_str().map(String::from)))
                        .expect("session id");
                    let path = format!("/api/session/{id}/command");
                    for body in warm_bodies() {
                        let (status, resp) = client.request("POST", &path, body.as_bytes());
                        assert_eq!(status, 200, "warmup refused: {resp}");
                    }
                    (0..ticks_each)
                        .map(|i| {
                            let t = Instant::now();
                            let (status, _) =
                                client.request("POST", &path, TICKS[i % 2].as_bytes());
                            let ms = t.elapsed().as_secs_f64() * 1e3;
                            assert_eq!(status, 200, "tick refused");
                            ms
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tick client"))
            .collect()
    });
    let wall = t.elapsed().as_secs_f64();
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let throughput = all.len() as f64 / wall;
    (percentile(&all, 0.50), percentile(&all, 0.99), throughput)
}

/// `--chaos`: one faulted pass. A scripted [`NetScript`] injects short
/// reads/writes, a slow drip, a stall, and a reset at fixed op indices
/// while a reconnect-and-retry client drives scripted sessions; every
/// confirmed digest must match the oracle and at least one fault must
/// fire. Returns `true` on a clean pass.
fn run_chaos(
    catalog: &Arc<Catalog>,
    scripts: &[Vec<Step>],
    oracle: &[Vec<OracleStep>],
    sessions: usize,
) -> bool {
    let engine = Arc::new(Explorer::from_shared(
        Arc::clone(catalog),
        ExplorerConfig::default(),
    ));
    let gateway = Arc::new(Gateway::new(Arc::clone(&engine), GatewayConfig::default()));
    let net = Arc::new(NetScript::new());
    let kinds = [
        NetFaultKind::ShortRead,
        NetFaultKind::ShortWrite,
        NetFaultKind::SlowDrip,
        NetFaultKind::Stall,
        NetFaultKind::Reset,
    ];
    for (i, kind) in kinds.iter().enumerate() {
        net.schedule((25 + i * 50) as u64, *kind);
    }
    let cfg = ServerConfig {
        read_timeout: std::time::Duration::from_millis(500),
        request_deadline: std::time::Duration::from_secs(2),
        write_timeout: std::time::Duration::from_secs(2),
        net_script: Some(Arc::clone(&net)),
        ..ServerConfig::default()
    };
    let mut server =
        Server::start(Arc::clone(&gateway), "127.0.0.1:0", cfg).expect("bind chaos server");
    let addr = server.addr();

    let (mut commands, mut failures, mut resends) = (0u64, 0u64, 0u64);
    for s in 0..sessions {
        let variant = s % scripts.len();
        let mut client: Option<Client> = None;
        let mut id: Option<String> = None;
        let mut prev: Option<String> = None;
        for (step_idx, step) in scripts[variant].iter().enumerate() {
            // One step: retry across transport failures and retryable
            // refusals; resends are safe (absolute-state commands).
            let mut sent = 0usize;
            let confirmed = loop {
                if sent >= 8 {
                    break None;
                }
                if client.is_none() {
                    client = Some(Client::connect(addr));
                }
                let c = client.as_mut().expect("client");
                if id.is_none() {
                    match c.try_request("POST", "/api/session", b"") {
                        Ok((200, body)) => {
                            id = json::parse(&body).ok().and_then(|d| {
                                d.get("session").and_then(|s| s.as_str().map(String::from))
                            });
                            continue;
                        }
                        Ok(_) | Err(_) => {
                            client = None;
                            continue;
                        }
                    }
                }
                let path = format!(
                    "/api/session/{}/command",
                    id.as_deref().expect("session id")
                );
                let body = step_body(step, prev.as_deref());
                sent += 1;
                match c.try_request("POST", &path, body.as_bytes()) {
                    Ok((200, resp)) => break Some((resp, sent > 1)),
                    Ok((408 | 503, _)) => client = None,
                    Ok((status, resp)) => {
                        eprintln!("CHAOS FAIL session {s} step {step_idx}: {status} {resp}");
                        break None;
                    }
                    Err(_) => client = None,
                }
            };
            commands += 1;
            match confirmed {
                Some((resp, retried)) => {
                    if retried {
                        resends += 1;
                    }
                    let expected = &oracle[variant][step_idx];
                    let ok = if retried {
                        json::parse(&resp)
                            .ok()
                            .and_then(|d| d.get("view").cloned())
                            .is_some_and(|v| stable_digest_hex(&v) == expected.stable)
                    } else {
                        digest_of(&resp).as_ref() == Some(&expected.full)
                    };
                    if !ok {
                        failures += 1;
                        eprintln!("CHAOS DIGEST MISMATCH session {s} step {step_idx}: {resp}");
                    }
                    prev = Some(resp);
                }
                None => failures += 1,
            }
        }
    }
    server.shutdown();
    let fired = net.faults_fired();
    let m = gateway.metrics();
    let timeout_class = m
        .request_timeouts
        .load(std::sync::atomic::Ordering::Relaxed)
        + m.idle_closes.load(std::sync::atomic::Ordering::Relaxed)
        + m.write_timeouts.load(std::sync::atomic::Ordering::Relaxed);
    let error_class = m.net_errors.load(std::sync::atomic::Ordering::Relaxed)
        + m.protocol_errors.load(std::sync::atomic::Ordering::Relaxed);
    eprintln!(
        "chaos: {commands} commands across {sessions} sessions, {failures} failures, \
         {resends} resent steps, {fired} faults fired \
         ({timeout_class} timeout-class, {error_class} error-class events)"
    );
    if fired == 0 {
        eprintln!("chaos: no fault ever fired — the pass proved nothing");
        return false;
    }
    failures == 0
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qag-loadgen-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("reset temp dir");
    }
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn main() {
    let mut sessions = 200usize;
    let mut clients = 16usize;
    let mut tick_clients = 2usize;
    let mut rows = 20_000usize;
    let mut bench = false;
    let mut chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--sessions" => sessions = num("--sessions"),
            "--clients" => clients = num("--clients"),
            "--tick-clients" => tick_clients = num("--tick-clients"),
            "--rows" => rows = num("--rows"),
            "--bench" => bench = true,
            "--chaos" => chaos = true,
            other => panic!("unknown flag {other}"),
        }
    }
    clients = clients.clamp(1, sessions.max(1));

    let catalog = catalog(rows);
    let scripts = scripts();
    eprintln!(
        "loadgen: {sessions} sessions over {clients} clients, {} script variants, {rows} rows",
        scripts.len()
    );

    // Sequential oracle first: the digests every concurrent session must hit.
    let oracle = oracle_digests(&catalog, &scripts);

    if chaos {
        // Smoke-run one faulted pass instead of the load/latency phases.
        let ok = run_chaos(&catalog, &scripts, &oracle, sessions.clamp(1, 8));
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Warm the .qag store with one pass over the script states, then boot
    // the serving engine from it — the restarted-process serving path.
    let store_dir = temp_dir("store");
    let ckpt_dir = temp_dir("ckpt");
    let engine_cfg = || ExplorerConfig {
        store_dir: Some(store_dir.clone()),
        ..ExplorerConfig::default()
    };
    {
        let warm = Arc::new(Explorer::from_shared(Arc::clone(&catalog), engine_cfg()));
        let mut s = warm
            .open_session(SessionSpec::default())
            .expect("open warm session");
        for body in warm_bodies() {
            let cmd = qagview_serve::parse_command(body.as_bytes()).expect("warm command");
            s.apply(cmd).expect("store warm-up");
        }
    } // engine drops: the store outlives the process that wrote it
    let engine = Arc::new(Explorer::from_shared(Arc::clone(&catalog), engine_cfg()));

    // Resident cap well below the session count: the load phase must churn
    // through eviction + restore, not quietly keep everything resident.
    let max_resident = (sessions / 3).max(8);
    let gateway = Arc::new(Gateway::new(
        Arc::clone(&engine),
        GatewayConfig {
            sessions: SessionConfig {
                shards: 16,
                max_resident,
                checkpoint_dir: Some(ckpt_dir.clone()),
            },
            ..GatewayConfig::default()
        },
    ));
    let mut server = Server::start(Arc::clone(&gateway), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    let addr = server.addr();
    eprintln!("serving on {addr} (resident cap {max_resident})");

    let load = run_load(addr, sessions, clients, &scripts, &oracle);
    let m = gateway.metrics();
    let load_ticks_per_s = load.commands as f64 / load.wall_s;
    let evicted = m
        .sessions_evicted
        .load(std::sync::atomic::Ordering::Relaxed);
    let restored = m
        .sessions_restored
        .load(std::sync::atomic::Ordering::Relaxed);
    eprintln!(
        "load: {} commands across {sessions} sessions in {:.2} s ({load_ticks_per_s:.0} cmd/s), \
         {} failures, {evicted} evictions, {restored} restores",
        load.commands, load.wall_s, load.failures
    );

    let inproc_median = inproc_tick_median_ms(&gateway, 201);
    let (tcp_p50, tcp_p99, ticks_per_s) = tcp_ticks(addr, tick_clients, 100);
    let headroom = 10.0 * inproc_median / tcp_p99;
    eprintln!(
        "latency: in-process median {inproc_median:.3} ms; TCP x{tick_clients} \
         p50 {tcp_p50:.3} ms, p99 {tcp_p99:.3} ms ({ticks_per_s:.0} ticks/s); \
         headroom {headroom:.2} (>= 1 required)"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let section = Json::obj([
        (
            "what",
            Json::from(
                "session-server load + latency gate: concurrent scripted sessions over TCP with \
                 eviction/restore churn, every view digest checked against a sequential bare-Explorer \
                 replay; then warm threshold ticks in-process vs over TCP \
                 (latency_headroom = 10 * inproc_median / tcp_p99, >= 1 required)",
            ),
        ),
        ("rows", Json::from(rows)),
        ("sessions", Json::from(sessions)),
        ("clients", Json::from(clients)),
        ("max_resident", Json::from(max_resident)),
        ("script_commands", Json::from(load.commands)),
        ("failed_commands", Json::from(load.failures)),
        ("evictions", Json::from(evicted)),
        ("restores", Json::from(restored)),
        ("load_wall_s", Json::from(load.wall_s)),
        ("load_commands_per_s", Json::from(load_ticks_per_s)),
        ("tick_clients", Json::from(tick_clients)),
        ("inproc_tick_median_ms", Json::from(inproc_median)),
        ("tcp_tick_p50_ms", Json::from(tcp_p50)),
        ("tcp_tick_p99_ms", Json::from(tcp_p99)),
        ("latency_headroom", Json::from(headroom)),
        ("throughput_ticks_per_s", Json::from(ticks_per_s)),
    ]);
    println!(
        "{}",
        Json::obj([("serve_tick", section.clone())]).to_text_pretty()
    );

    if bench {
        let path = repo_root().join("BENCH_hotpath.json");
        let mut doc = match std::fs::read_to_string(&path) {
            Ok(text) => json::parse(&text)
                .unwrap_or_else(|e| panic!("existing {} is not valid JSON: {e}", path.display())),
            Err(_) => Json::obj([]),
        };
        doc.set("serve_tick", section);
        let mut out = doc.to_text_pretty();
        out.push('\n');
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("merged serve_tick into {}", path.display());
    }

    let mut ok = true;
    if load.failures > 0 {
        eprintln!(
            "loadgen: {} failed commands (digest mismatch or refusal)",
            load.failures
        );
        ok = false;
    }
    if evicted == 0 || restored == 0 {
        eprintln!(
            "loadgen: eviction/restore was not exercised (evicted {evicted}, restored {restored})"
        );
        ok = false;
    }
    if headroom < 1.0 {
        eprintln!("loadgen: TCP p99 {tcp_p99:.3} ms exceeds 10x the in-process median {inproc_median:.3} ms");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}
