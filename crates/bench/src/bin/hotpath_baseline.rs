//! Hot-path perf baseline: candidate-index construction and greedy-step
//! marginal evaluation on synthetic answer relations (N ≈ 50k, m ∈ {4, 6}).
//!
//! Emits `BENCH_hotpath.json` in the working directory. This file is the
//! perf trajectory anchor: every future optimization PR reruns this binary
//! and compares against the committed baseline. Three comparisons per
//! workload:
//!
//! * **candidate build** — naive per-candidate scan (Fig. 8(a) ablation)
//!   vs the inverted sequential build vs the sharded parallel build;
//! * **greedy marginals** — per-tuple `marginal_naive` probes vs the fused
//!   word-level `marginal_fused` kernels over the dense (bitset-backed)
//!   candidates — the class where the two paths differ; sparse candidates
//!   share one code path — at three coverage states of the working set
//!   (early ≈25%, mid ≈55%, late ≈ full), since a greedy run sweeps
//!   through all of them. The headline `speedup` is the late state, where
//!   Algorithm 2 leaves fused recomputation as the dominant cost;
//! * **delta greedy** — a full Hybrid run with `EvalMode::Naive` vs
//!   `EvalMode::Delta` (Algorithm 2);
//! * **plane build** — a cold `(k, D)`-plane precomputation (§6.2) over an
//!   `Arc`-shared candidate index: the legacy per-round re-evaluation
//!   engine (`DescentEngine::PerRoundReEval`: O(p²) merge evaluations every
//!   round, O(p²) lifetime diffing) vs the merge-frontier engine
//!   (`DescentEngine::Frontier`: pair LCAs resolved once into a warmed
//!   prototype shared by every `D`-descent, lazy bound-pruned Max-Avg
//!   selection, event-driven lifetimes, D ∈ {0, 1} built once). Every
//!   stored solution across the whole `(k, D)` grid is asserted
//!   byte-identical before timing;
//! * **query exec** — the paper-shaped aggregate query on an N = 50k
//!   MovieLens-like RatingTable: row-at-a-time reference engine vs the
//!   vectorized batched engine (cold), and cold re-execution vs `O(groups)`
//!   threshold re-evaluation from a cached `GroupedResult` (the §6
//!   interactive-loop hot path);
//! * **n scaling** — the same paper query's group phase, sequential vs
//!   morsel-parallel (ordered partition merge), as the base relation grows
//!   100× (N ∈ {50k, 500k, 5M}; streaming datagen, fingerprint-identical
//!   results asserted before timing). Per-row throughput is recorded per
//!   point; the parallel arm's throughput is a core-scaling metric and is
//!   only comparable between runs with equal `threads`;
//! * **session tick** — end-to-end command latency of the owned
//!   exploration engine on the same table: a warm `SetThreshold` slider
//!   tick and a warm `SetK` knob move (median of 21) vs rebuilding the
//!   pipeline cold at the same state (warm-vs-cold bar ≥ 10×);
//! * **progressive first paint** — the sampled approximate first paint of
//!   progressive mode (`FidelityMode::Approximate`, refinement worker
//!   disabled so the timing is pure) vs the exact cold open of the same
//!   session at N = 5M. One refined session is first asserted
//!   byte-identical (f64 bits) to a store-less cold exact session at the
//!   same state; the acceptance bar is a ≥ 50× first-paint speedup.
//!
//! Methodology: each timed section reports the best of `reps` runs (min
//! wall clock), so scheduler noise only ever inflates, never deflates, the
//! reported speedups.

use qagview_bench::{repo_root, synthetic_answers};
use qagview_core::{
    fixed_order_phase, hybrid_with, run_phases, run_phases_reeval, EvalMode, Evaluator, GreedyRule,
    Params, Seeding, WorkingSet,
};
use qagview_datagen::movielens::{self, MovieLensConfig};
use qagview_interactive::{
    store, DescentEngine, ExploreCommand, Explorer, ExplorerConfig, Fidelity, FidelityMode,
    PrecomputeConfig, Precomputed, SampleSpec, SessionSpec,
};
use qagview_lattice::{AnswerSet, CandidateIndex};
use qagview_query::{
    bind, execute, execute_rows, group_aggregate, group_aggregate_parallel, parse, ParallelConfig,
};
use qagview_storage::{Catalog, TableBuilder};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 50_000;

struct Workload {
    m: usize,
    l: usize,
    k: usize,
}

const WORKLOADS: [Workload; 2] = [
    Workload {
        m: 4,
        l: 200,
        k: 20,
    },
    Workload {
        m: 6,
        l: 100,
        k: 20,
    },
];

fn time_best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Median wall-clock of `reps` runs — used for the session-tick latencies,
/// which are small enough that a median is the more honest central
/// tendency (min would understate lock and allocator jitter).
fn time_median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Absorb candidates (largest coverage first, skipping near-universal ones
/// so the mix is realistic) until at least `target_pct` percent of the
/// relation is covered — the coverage states greedy rounds sweep through.
fn working_set_at_coverage<'a>(
    answers: &'a AnswerSet,
    index: &'a CandidateIndex,
    target_pct: usize,
) -> WorkingSet<'a> {
    let mut w = WorkingSet::new(answers, index);
    let mut by_size: Vec<_> = index.iter().map(|(id, info)| (info.count(), id)).collect();
    by_size.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));
    for &(count, id) in &by_size {
        if count == 0 || count * 2 > answers.len() {
            continue;
        }
        if w.covered_count() * 100 >= answers.len() * target_pct {
            break;
        }
        if w.add_candidate(id).is_err() {
            continue;
        }
    }
    w
}

/// The `k` range a `plane_build` arm materializes: the paper's Fig. 6
/// sweeps `k` up to 50, so a cold plane build serving that interactive
/// range descends from a pool of `2 · 50` clusters.
const PLANE_K_MAX: usize = 50;

/// One `plane_build` entry: a cold `(k, D)`-plane build over the workload's
/// answer relation (`k ∈ [1, 50]`, every `D` from 0 to m, pool = 2·k_max),
/// built by `Precomputed::build_with_index` with the per-round
/// re-evaluation engine vs the merge-frontier engine. The candidate index
/// is `Arc`-shared so neither arm pays for cloning it; every stored
/// solution across the whole `(k, D)` grid is asserted byte-identical
/// (patterns, member lists, f64 sum bits — the workload's values are
/// dyadic, so the comparison is exact) before anything is timed. The
/// descent-level marginal-evaluation counts are reported alongside from
/// one instrumented D = 0 descent per engine.
fn bench_plane_build_for(
    answers: &AnswerSet,
    index: &CandidateIndex,
    wl: &Workload,
) -> (String, f64) {
    let arc_answers = Arc::new(answers.clone());
    let arc_index = Arc::new(index.clone());
    let d_max = wl.m;
    let cfg_frontier = PrecomputeConfig {
        k_min: 1,
        k_max: PLANE_K_MAX,
        d_min: 0,
        d_max,
        pool_factor: 2,
        eval: EvalMode::Delta,
        parallel: false,
        engine: DescentEngine::Frontier,
    };
    let cfg_reeval = PrecomputeConfig {
        engine: DescentEngine::PerRoundReEval,
        ..cfg_frontier
    };

    // Byte-equality across the whole (k, D) grid before timing anything.
    let frontier = Precomputed::build_with_index(
        Arc::clone(&arc_answers),
        Arc::clone(&arc_index),
        cfg_frontier,
    )
    .expect("frontier build");
    let reeval =
        Precomputed::build_with_index(Arc::clone(&arc_answers), Arc::clone(&arc_index), cfg_reeval)
            .expect("re-eval build");
    for d in 0..=d_max {
        for k in 1..=PLANE_K_MAX {
            let a = frontier.solution(k, d).expect("frontier solution");
            let b = reeval.solution(k, d).expect("re-eval solution");
            assert_eq!(a.patterns(), b.patterns(), "engines diverge at k={k} d={d}");
            assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "sum bits k={k} d={d}");
            for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
                assert_eq!(ca.members, cb.members, "members k={k} d={d}");
            }
        }
    }
    drop((frontier, reeval));

    let reeval_ms = time_best_ms(3, || {
        Precomputed::build_with_index(Arc::clone(&arc_answers), Arc::clone(&arc_index), cfg_reeval)
            .unwrap()
    });
    let frontier_ms = time_best_ms(3, || {
        Precomputed::build_with_index(
            Arc::clone(&arc_answers),
            Arc::clone(&arc_index),
            cfg_frontier,
        )
        .unwrap()
    });
    let speedup = reeval_ms / frontier_ms;

    // Context: marginal evaluations of one D = 0 descent per engine.
    let params = Params::new(PLANE_K_MAX, wl.l, 0);
    let w0 = fixed_order_phase(
        answers,
        index,
        &params,
        2 * PLANE_K_MAX,
        Seeding::None,
        EvalMode::Delta,
    )
    .expect("fixed-order phase");
    let mut w = w0.clone();
    let mut ev_reeval = Evaluator::new(EvalMode::Delta);
    run_phases_reeval(
        &mut w,
        0,
        1,
        &mut ev_reeval,
        GreedyRule::SolutionAvg,
        |_| {},
    )
    .expect("re-eval descent");
    let mut w = w0.clone();
    let mut ev_frontier = Evaluator::new(EvalMode::Delta);
    run_phases(
        &mut w,
        0,
        1,
        &mut ev_frontier,
        GreedyRule::SolutionAvg,
        |_| {},
    )
    .expect("frontier descent");

    eprintln!(
        "  plane build (k<=50, {} planes, pool {}): re-eval {reeval_ms:.2} ms, \
         frontier {frontier_ms:.2} ms ({speedup:.1}x); d=0 descent evals {} -> {}",
        d_max + 1,
        2 * PLANE_K_MAX,
        ev_reeval.eval_calls(),
        ev_frontier.eval_calls(),
    );
    let json = format!(
        r#"      {{
        "m": {m}, "k_max": {PLANE_K_MAX}, "pool": {pool}, "d_planes": {planes},
        "reeval_ms": {reeval_ms:.3},
        "frontier_ms": {frontier_ms:.3},
        "speedup": {speedup:.2},
        "d0_descent_marginal_evals_reeval": {er},
        "d0_descent_marginal_evals_frontier": {ef}
      }}"#,
        m = wl.m,
        pool = 2 * PLANE_K_MAX,
        planes = d_max + 1,
        er = ev_reeval.eval_calls(),
        ef = ev_frontier.eval_calls(),
    );
    (json, speedup)
}

/// The `query_exec` section: vectorized vs row-at-a-time execution and
/// threshold re-evaluation from a cached grouped result, on the paper's
/// MovieLens query over an N-row RatingTable.
fn bench_query_exec(all_ok: &mut bool) -> String {
    let table = movielens::generate(&MovieLensConfig {
        ratings: N,
        ..Default::default()
    })
    .expect("movielens table");
    let rows = table.num_rows();
    let mut catalog = Catalog::new();
    catalog.register("ratingtable", table);
    let table = catalog.require("ratingtable").unwrap();

    // The paper's Example 1.1 grouping (m = 4) over the full relation —
    // the group phase at its heaviest (every row grouped and aggregated).
    let sql_at = |threshold: usize| {
        format!(
            "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
             GROUP BY hdec, agegrp, gender, occupation \
             HAVING count(*) > {threshold} ORDER BY val DESC LIMIT 100"
        )
    };
    let bound = bind(&parse(&sql_at(10)).unwrap(), table).expect("bind");

    // Engines must agree before their times mean anything.
    let vec_out = execute(&bound, table).expect("vectorized");
    let row_out = execute_rows(&bound, table).expect("row engine");
    assert_eq!(vec_out, row_out, "engines diverge");

    let row_ms = time_best_ms(5, || execute_rows(&bound, table).unwrap());
    let vec_ms = time_best_ms(5, || execute(&bound, table).unwrap());
    let exec_speedup = row_ms / vec_ms;

    // Threshold sweep: a slider pass over 8 HAVING positions of the same
    // top-L query (the paper's summarization input is the top-L prefix),
    // cold re-execution vs O(groups) re-derivation from one cached group
    // phase.
    let thresholds = [5usize, 10, 20, 30, 50, 75, 100, 150];
    let bounds: Vec<_> = thresholds
        .iter()
        .map(|&t| bind(&parse(&sql_at(t)).unwrap(), table).unwrap())
        .collect();
    let grouped = group_aggregate(&bound.group, table).expect("group phase");
    for b in &bounds {
        assert_eq!(
            grouped.apply(&b.output).unwrap(),
            execute(b, table).unwrap(),
            "reuse diverges from cold execution"
        );
    }
    let cold_ms = time_best_ms(3, || {
        for b in &bounds {
            black_box(execute(b, table).unwrap());
        }
    });
    let reuse_ms = time_best_ms(3, || {
        for b in &bounds {
            black_box(grouped.apply(&b.output).unwrap());
        }
    });
    let reuse_speedup = cold_ms / reuse_ms;

    eprintln!(
        "query exec ({rows} rows, {} groups): row {row_ms:.2} ms, vectorized {vec_ms:.2} ms \
         ({exec_speedup:.1}x); threshold sweep x{}: cold {cold_ms:.2} ms, reuse {reuse_ms:.3} ms \
         ({reuse_speedup:.0}x)",
        grouped.num_groups(),
        thresholds.len()
    );
    // Static bars are coarse sanity floors; the precise guard is the CI
    // trajectory gate (`perf_trajectory`), which compares every enforced
    // metric against the committed baseline with a 25% tolerance. The
    // vectorized floor sits at 2x because the *row* engine's absolute time
    // swings with the host (the ratio's denominator), while the vectorized
    // time itself is stable.
    if exec_speedup < 2.0 {
        *all_ok = false;
        eprintln!("  WARNING: vectorized execution below the 2x acceptance floor");
    }
    if reuse_speedup < 20.0 {
        *all_ok = false;
        eprintln!("  WARNING: threshold reuse below the 20x acceptance bar");
    }

    format!(
        r#"  "query_exec": {{
    "sql": "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > t ORDER BY val DESC LIMIT 100",
    "rows": {rows},
    "groups": {groups},
    "aggregates": {aggs},
    "row_at_a_time_ms": {row_ms:.3},
    "vectorized_ms": {vec_ms:.3},
    "speedup": {exec_speedup:.2},
    "threshold_reeval": {{
      "sweep_positions": {positions},
      "cold_ms": {cold_ms:.3},
      "reuse_ms": {reuse_ms:.4},
      "speedup": {reuse_speedup:.2}
    }}
  }}"#,
        groups = grouped.num_groups(),
        aggs = grouped.num_aggs(),
        positions = thresholds.len(),
    )
}

/// The `store_warm_start` section: what a *fresh process* pays to serve
/// its first summary from a persisted `.qag` plane store versus building
/// the same plane set cold from the answer relation.
///
/// The cold arm is the full §6.2 initialization a process without a store
/// must run: candidate-index construction plus every `(k ≤ 50, D ≤ m)`
/// descent ([`Precomputed::build`]). The warm arm opens the store file
/// (read + checksum + header/interval/state decode; coverage sections stay
/// zero-copy in the buffer) and serves `solution(k, d)` — exactly the path
/// a restarted serving process takes. Before timing anything, every stored
/// solution across the whole grid is asserted byte-identical (patterns,
/// member lists, f64 sum/value bits, guidance plot) between the built and
/// the loaded plane set.
fn bench_store_warm_start(all_ok: &mut bool) -> String {
    let wl = &WORKLOADS[1]; // m = 6 — the heavier plane workload
    let answers = synthetic_answers(N, wl.m, 7).expect("synthetic workload");
    let cfg = PrecomputeConfig {
        k_min: 1,
        k_max: PLANE_K_MAX,
        d_min: 0,
        d_max: wl.m,
        pool_factor: 2,
        eval: EvalMode::Delta,
        parallel: false,
        engine: DescentEngine::Frontier,
    };
    let (first_k, first_d) = (20usize, 2usize);

    // Build once, persist, and hold the byte-identity bar before timing.
    let built = Precomputed::build(&answers, wl.l, cfg).expect("cold build");
    // Keyed by process id: the fingerprint is deterministic (fixed seed),
    // so two concurrent baseline runs on one host must not share a file —
    // one run's cleanup would yank it out from under the other's timing
    // loop.
    let path = std::env::temp_dir().join(format!(
        "qag-bench-{}-{}",
        std::process::id(),
        store::plane_file_name(answers.fingerprint(), wl.l, PLANE_K_MAX, 2)
    ));
    store::save(&built, &path).expect("save plane store");
    let file_bytes = std::fs::metadata(&path).expect("stat store").len();
    let loaded = store::load(&path, &answers).expect("load plane store");
    for d in 0..=wl.m {
        for k in 1..=PLANE_K_MAX {
            let a = built.solution(k, d).expect("built solution");
            let b = loaded.solution(k, d).expect("loaded solution");
            assert_eq!(a.patterns(), b.patterns(), "store diverges at k={k} d={d}");
            assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "sum bits k={k} d={d}");
            for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
                assert_eq!(ca.members, cb.members, "members k={k} d={d}");
            }
            assert_eq!(
                built.value(k, d).expect("value").to_bits(),
                loaded.value(k, d).expect("value").to_bits(),
                "value bits k={k} d={d}"
            );
        }
    }
    assert_eq!(built.guidance(), loaded.guidance(), "guidance plots differ");
    let clusters_stored = loaded.stored_intervals();
    drop((built, loaded));

    let cold_ms = time_best_ms(3, || {
        let pre = Precomputed::build(&answers, wl.l, cfg).expect("cold build");
        pre.solution(first_k, first_d).expect("first summary")
    });
    let warm_ms = time_best_ms(5, || {
        let pre = store::load(&path, &answers).expect("warm load");
        pre.solution(first_k, first_d).expect("first summary")
    });
    let speedup = cold_ms / warm_ms;
    let _ = std::fs::remove_file(&path);

    eprintln!(
        "store warm start (m={}, {} planes, {} intervals, {file_bytes} bytes): \
         cold build+first-summary {cold_ms:.2} ms, open-from-store {warm_ms:.3} ms ({speedup:.0}x)",
        wl.m,
        wl.m + 1,
        clusters_stored,
    );
    if speedup < 50.0 {
        *all_ok = false;
        eprintln!("  WARNING: store warm start below the 50x acceptance bar");
    }

    format!(
        r#"  "store_warm_start": {{
    "what": "fresh-process first summary: open a persisted .qag plane store (read + checksum + lazy-coverage decode) vs rebuilding the plane set cold (candidate index + all (k,D) descents); loaded plane asserted byte-identical across the whole grid first",
    "m": {m}, "n": {n}, "l": {l}, "k_max": {PLANE_K_MAX}, "d_planes": {planes},
    "file_bytes": {file_bytes},
    "stored_intervals": {clusters_stored},
    "first_summary": {{ "k": {first_k}, "d": {first_d} }},
    "cold_build_ms": {cold_ms:.3},
    "open_from_store_ms": {warm_ms:.4},
    "speedup": {speedup:.2}
  }}"#,
        m = wl.m,
        n = answers.len(),
        l = wl.l,
        planes = wl.m + 1,
    )
}

/// The `n_scaling` section: sequential vs morsel-parallel group phase of
/// the paper query as the base relation grows 100× (N ∈ {50k, 500k, 5M}).
///
/// Each table is materialized through the streaming generator
/// ([`movielens::iter_rows`]), so generation allocates O(users + movies)
/// beyond the table itself, and is dropped before the next point. Both
/// engines are asserted fingerprint-identical before anything is timed.
///
/// The parallel arm always runs the full morsel + ordered-merge pipeline
/// (partitions ≥ 2 even on a single-core host), so on 1 CPU its
/// throughput measures pipeline overhead, not core scaling. The
/// trajectory gate therefore always enforces the *sequential* per-row
/// throughput and treats `par_mrows_per_s` as a core-scaling metric,
/// skipped whenever the committed and fresh `threads` counts differ.
fn bench_n_scaling(threads: usize, all_ok: &mut bool) -> String {
    let sql = "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
               GROUP BY hdec, agegrp, gender, occupation \
               HAVING count(*) > 10 ORDER BY val DESC LIMIT 100";
    let partitions = threads.max(2);
    let cfg = ParallelConfig {
        threads: partitions,
        ..ParallelConfig::default()
    };
    let mut points = Vec::new();
    for &(n, reps) in &[(50_000usize, 5usize), (500_000, 3), (5_000_000, 2)] {
        let t = Instant::now();
        let mut b = TableBuilder::with_capacity(movielens::rating_schema(), n);
        for row in movielens::iter_rows(&MovieLensConfig {
            ratings: n,
            ..Default::default()
        }) {
            b.push_row(row).expect("streamed row");
        }
        let table = b.finish();
        let gen_ms = t.elapsed().as_secs_f64() * 1e3;
        let rows = table.num_rows();
        let bound = bind(&parse(sql).unwrap(), &table).expect("bind");

        // Identity before timing: the ordered merge must reproduce the
        // sequential group phase bit-for-bit at every scale.
        let seq = group_aggregate(&bound.group, &table).expect("sequential group phase");
        let par = group_aggregate_parallel(&bound.group, &table, &cfg).expect("parallel scan");
        assert_eq!(
            seq.result_fingerprint(),
            par.result_fingerprint(),
            "parallel group phase diverges from sequential at n={n}"
        );
        let groups = seq.num_groups();
        drop((seq, par));

        let seq_ms = time_best_ms(reps, || group_aggregate(&bound.group, &table).unwrap());
        let par_ms = time_best_ms(reps, || {
            group_aggregate_parallel(&bound.group, &table, &cfg).unwrap()
        });
        let seq_mrows = rows as f64 / seq_ms / 1e3;
        let par_mrows = rows as f64 / par_ms / 1e3;
        eprintln!(
            "n-scaling n={n}: gen {gen_ms:.0} ms, {rows} rows, {groups} groups; \
             seq {seq_ms:.2} ms ({seq_mrows:.1} Mrows/s), \
             par×{partitions} {par_ms:.2} ms ({par_mrows:.1} Mrows/s)"
        );
        // Coarse absolute floor; the trajectory gate owns the tight
        // relative bound against the committed baseline.
        if seq_mrows < 1.0 {
            *all_ok = false;
            eprintln!("  WARNING: sequential group phase below 1 Mrows/s at n={n}");
        }
        points.push(format!(
            r#"      {{ "n": {n}, "rows": {rows}, "groups": {groups}, "gen_ms": {gen_ms:.1}, "seq_ms": {seq_ms:.3}, "par_ms": {par_ms:.3}, "seq_mrows_per_s": {seq_mrows:.2}, "par_mrows_per_s": {par_mrows:.2} }}"#
        ));
    }

    format!(
        "  \"n_scaling\": {{\n    \"what\": \"sequential vs morsel-parallel group phase of the paper query as N grows 100x; tables stream from the seeded generator and both engines are asserted fingerprint-identical before timing; par_mrows_per_s is core-scaling and only comparable between runs with equal threads\",\n    \"sql\": \"SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > 10 ORDER BY val DESC LIMIT 100\",\n    \"partitions\": {partitions},\n    \"threads\": {threads},\n    \"points\": [\n{}\n    ]\n  }}",
        points.join(",\n")
    )
}

/// The `session_tick` section: command latency of the owned exploration
/// engine on the 50k-row MovieLens table — a warm `SetThreshold` slider
/// tick and a warm `SetK` knob move versus rebuilding the pipeline cold at
/// the same state (fresh engine: scan + answer relation + plane build).
fn bench_session_tick(all_ok: &mut bool) -> String {
    let table = movielens::generate(&MovieLensConfig {
        ratings: N,
        ..Default::default()
    })
    .expect("movielens table");
    let rows = table.num_rows();
    let mut catalog = Catalog::new();
    catalog.register("ratingtable", table);
    let catalog = Arc::new(catalog);

    let sql = "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
               GROUP BY hdec, agegrp, gender, occupation \
               HAVING count(*) > 50 ORDER BY val DESC";

    // Cold: a fresh engine answers the opening command from nothing.
    let cold_ms = time_median_ms(5, || {
        let engine = Arc::new(Explorer::from_shared(
            Arc::clone(&catalog),
            ExplorerConfig::default(),
        ));
        let mut session = engine
            .open_session(SessionSpec::default())
            .expect("open session");
        session
            .apply(ExploreCommand::SetQuery(sql.into()))
            .expect("cold open")
    });

    // Warm: one long-lived session; ticks alternate between two values so
    // every measured command does real state-advancing work. The 50.0/50.5
    // threshold pair leaves the answer relation unchanged (counts are
    // integers), which is exactly the §6 slider fast path: group phase and
    // plane answer from cache, the relation re-derives in O(groups).
    let engine = Arc::new(Explorer::from_shared(
        Arc::clone(&catalog),
        ExplorerConfig::default(),
    ));
    let mut session = engine
        .open_session(SessionSpec::default())
        .expect("open session");
    let groups = {
        let r = session
            .apply(ExploreCommand::SetQuery(sql.into()))
            .expect("warm open");
        session
            .apply(ExploreCommand::SetK(6))
            .expect("initial SetK");
        // Warm both threshold positions once so the answers layer is hot.
        session
            .apply(ExploreCommand::SetThreshold(50.5))
            .expect("warmup tick");
        session
            .apply(ExploreCommand::SetThreshold(50.0))
            .expect("warmup tick");
        r.summary.total
    };

    let mut flip = false;
    let threshold_tick_ms = time_median_ms(21, || {
        flip = !flip;
        let t = if flip { 50.5 } else { 50.0 };
        session
            .apply(ExploreCommand::SetThreshold(t))
            .expect("threshold tick")
    });
    let mut flip = false;
    let set_k_tick_ms = time_median_ms(21, || {
        flip = !flip;
        let k = if flip { 7 } else { 6 };
        session.apply(ExploreCommand::SetK(k)).expect("k tick")
    });

    let warm_vs_cold = cold_ms / threshold_tick_ms.max(set_k_tick_ms);
    eprintln!(
        "session tick ({rows} rows, {groups} answers): cold open {cold_ms:.2} ms, \
         SetThreshold tick {threshold_tick_ms:.4} ms, SetK tick {set_k_tick_ms:.4} ms \
         (warm-vs-cold {warm_vs_cold:.0}x)"
    );
    if warm_vs_cold < 10.0 {
        *all_ok = false;
        eprintln!("  WARNING: warm session ticks below the 10x acceptance bar");
    }

    format!(
        r#"  "session_tick": {{
    "sql": "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > t ORDER BY val DESC",
    "rows": {rows},
    "answers": {groups},
    "k": 6,
    "cold_open_ms": {cold_ms:.3},
    "set_threshold_tick_ms": {threshold_tick_ms:.4},
    "set_k_tick_ms": {set_k_tick_ms:.4},
    "warm_vs_cold": {warm_vs_cold:.2}
  }}"#
    )
}

/// The `progressive_first_paint` section: what progressive mode buys at
/// N = 5M — a seeded sampled first paint (approximate session, refinement
/// worker disabled so nothing exact runs concurrently on the timed arm)
/// versus the exact cold open of the same query.
///
/// Identity comes first: one approximate session is promoted via
/// `AwaitExact` and its refined view is asserted byte-identical (summary,
/// plot, per-cluster f64 sum/avg bits) to a store-less cold exact session
/// at the same state. Only then are both arms timed, each on a fresh
/// engine over the `Arc`-shared catalog so neither sees a warm cache.
fn bench_progressive_first_paint(all_ok: &mut bool) -> String {
    const ROWS: usize = 5_000_000;
    let sql = "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
               GROUP BY hdec, agegrp, gender, occupation \
               HAVING count(*) > 10 ORDER BY val DESC";
    let t = Instant::now();
    let mut b = TableBuilder::with_capacity(movielens::rating_schema(), ROWS);
    for row in movielens::iter_rows(&MovieLensConfig {
        ratings: ROWS,
        ..Default::default()
    }) {
        b.push_row(row).expect("streamed row");
    }
    let mut catalog = Catalog::new();
    catalog.register("ratingtable", b.finish());
    let catalog = Arc::new(catalog);
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;

    // The sampled scan is memory-latency-bound (strided gathers across a
    // 5M-row table run ~15x slower per row than the sequential exact
    // scan), so the first-paint sample is sized for this N: 1024 rows
    // keep the whole open around a millisecond while still estimating
    // hundreds of groups. The spec is reported in the JSON section.
    let cfg = ExplorerConfig {
        sample: SampleSpec {
            target_rows: 1_024,
            ..Default::default()
        },
        ..Default::default()
    };
    let fresh_engine = || Arc::new(Explorer::from_shared(Arc::clone(&catalog), cfg.clone()));
    let approx_spec = || SessionSpec {
        sql: Some(sql.into()),
        fidelity: FidelityMode::Approximate,
        background_refine: false,
        ..Default::default()
    };
    let exact_spec = || SessionSpec {
        sql: Some(sql.into()),
        ..Default::default()
    };
    let sample = cfg.sample;

    // Identity before timing: promote one approximate session and hold it
    // against the store-less cold exact path at the same state.
    let engine = fresh_engine();
    let mut s = engine
        .open_session(approx_spec())
        .expect("approximate open");
    let approx = s.apply(ExploreCommand::SetK(6)).expect("approximate SetK");
    let (rel_err, confidence) = match approx.fidelity {
        Fidelity::Approximate {
            rel_err,
            confidence,
        } => (rel_err, confidence),
        ref other => panic!("approximate session served {other:?}"),
    };
    let sampled_answers = approx.summary.total;
    let refined = s.apply(ExploreCommand::AwaitExact).expect("AwaitExact");
    assert_eq!(refined.fidelity, Fidelity::Refined, "promotion must refine");
    let engine2 = fresh_engine();
    let mut s2 = engine2.open_session(exact_spec()).expect("exact open");
    let exact = s2.apply(ExploreCommand::SetK(6)).expect("exact SetK");
    assert_eq!(
        refined.summary, exact.summary,
        "refined view diverges from the cold exact path"
    );
    assert_eq!(refined.plot, exact.plot, "guidance plots diverge");
    for (a, b) in refined
        .summary
        .clusters
        .iter()
        .zip(exact.summary.clusters.iter())
    {
        assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "cluster sum bits");
        assert_eq!(a.avg.to_bits(), b.avg.to_bits(), "cluster avg bits");
    }
    assert_eq!(refined.summary.avg.to_bits(), exact.summary.avg.to_bits());
    let exact_answers = exact.summary.total;
    drop((s, s2, engine, engine2));

    // Timed arms: a fresh engine per rep — both arms pay their pipeline
    // from nothing, the only difference is the group-phase fidelity.
    let first_paint_ms = time_median_ms(7, || {
        fresh_engine()
            .open_session(approx_spec())
            .expect("sampled first paint")
    });
    let exact_cold_ms = time_median_ms(3, || {
        fresh_engine()
            .open_session(exact_spec())
            .expect("exact cold open")
    });
    let speedup = exact_cold_ms / first_paint_ms;

    eprintln!(
        "progressive first paint ({ROWS} rows, gen {gen_ms:.0} ms, sample {} rows): \
         sampled open {first_paint_ms:.3} ms ({sampled_answers} est. answers, \
         rel_err {rel_err:.4} @ {confidence:.2}), exact cold open {exact_cold_ms:.2} ms \
         ({exact_answers} answers) — {speedup:.0}x",
        sample.target_rows,
    );
    if speedup < 50.0 {
        *all_ok = false;
        eprintln!("  WARNING: sampled first paint below the 50x acceptance bar");
    }

    format!(
        r#"  "progressive_first_paint": {{
    "what": "sampled approximate first paint (FidelityMode::Approximate, refinement worker off) vs exact cold open of the same session at N = 5M; one refined session asserted byte-identical to a store-less cold exact session before timing",
    "sql": "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > 10 ORDER BY val DESC",
    "rows": {ROWS},
    "answers_exact": {exact_answers},
    "answers_sampled": {sampled_answers},
    "sample": {{ "target_rows": {target}, "reservoir": {reservoir} }},
    "rel_err": {rel_err:.6},
    "confidence": {confidence:.2},
    "gen_ms": {gen_ms:.1},
    "first_paint_ms": {first_paint_ms:.4},
    "exact_cold_ms": {exact_cold_ms:.3},
    "speedup": {speedup:.2}
  }}"#,
        target = sample.target_rows,
        reservoir = sample.reservoir,
    )
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut sections = Vec::new();
    let mut plane_sections = Vec::new();
    let mut all_ok = true;

    for wl in &WORKLOADS {
        let answers = synthetic_answers(N, wl.m, 7).expect("synthetic workload");
        eprintln!("workload m={} l={}: {} tuples", wl.m, wl.l, answers.len());

        // --- candidate build ---
        // Same min-of-N protection as the optimized arms, so scheduler
        // noise cannot inflate the naive side of the speedup ratio.
        let naive_ms = time_best_ms(3, || CandidateIndex::build_naive(&answers, wl.l).unwrap());
        let seq_ms = time_best_ms(3, || {
            CandidateIndex::build_sequential(&answers, wl.l).unwrap()
        });
        let par_ms = time_best_ms(3, || {
            CandidateIndex::build_parallel(&answers, wl.l, threads).unwrap()
        });
        let index = CandidateIndex::build(&answers, wl.l).expect("candidate index");
        eprintln!(
            "  build: naive {naive_ms:.1} ms, sequential {seq_ms:.1} ms, parallel {par_ms:.1} ms ({} candidates)",
            index.len()
        );

        // --- greedy-step marginals: fused kernel vs per-tuple probes over
        // the dense candidates, at the coverage states of a greedy sweep ---
        let dense_ids: Vec<_> = index
            .iter()
            .filter(|(_, info)| info.cov_bits.is_some())
            .map(|(id, _)| id)
            .collect();
        let all_ids: Vec<_> = index.iter().map(|(id, _)| id).collect();
        let mut state_sections = Vec::new();
        let mut late_speedup = 0.0;
        for (stage, pct) in [("early", 25usize), ("mid", 55), ("late", 100)] {
            let w = working_set_at_coverage(&answers, &index, pct);
            let naive_ms = time_best_ms(5, || {
                let mut acc = (0.0f64, 0u64);
                for &id in &dense_ids {
                    let (s, c) = w.marginal_naive(id);
                    acc.0 += s;
                    acc.1 += u64::from(c);
                }
                acc
            });
            let fused_ms = time_best_ms(5, || {
                let mut acc = (0.0f64, 0u64);
                for &id in &dense_ids {
                    let (s, c) = w.marginal_fused(id);
                    acc.0 += s;
                    acc.1 += u64::from(c);
                }
                acc
            });
            let speedup = naive_ms / fused_ms;
            if stage == "late" {
                late_speedup = speedup;
            }
            eprintln!(
                "  {stage:>5} marginals ({} dense cands, {}/{} covered): naive {naive_ms:.3} ms, fused {fused_ms:.3} ms ({speedup:.1}x)",
                dense_ids.len(),
                w.covered_count(),
                answers.len()
            );
            state_sections.push(format!(
                r#"          {{ "stage": "{stage}", "covered": {}, "naive_per_tuple_ms": {naive_ms:.4}, "fused_ms": {fused_ms:.4}, "speedup": {speedup:.2} }}"#,
                w.covered_count()
            ));
        }
        if late_speedup < 5.0 {
            all_ok = false;
            eprintln!("  WARNING: fused marginal speedup below the 5x acceptance bar");
        }
        // All-candidate aggregate at the mid state, for context (sparse
        // candidates share one code path, so this dilutes toward 1x).
        let w_mid = working_set_at_coverage(&answers, &index, 55);
        let agg_naive_ms = time_best_ms(5, || {
            let mut acc = 0.0;
            for &id in &all_ids {
                acc += w_mid.marginal_naive(id).0;
            }
            acc
        });
        let agg_fused_ms = time_best_ms(5, || {
            let mut acc = 0.0;
            for &id in &all_ids {
                acc += w_mid.marginal_fused(id).0;
            }
            acc
        });

        // --- plane build: per-round re-eval vs merge-frontier descents ---
        let (plane_json, plane_speedup) = bench_plane_build_for(&answers, &index, wl);
        plane_sections.push(plane_json);
        // Floor at 4x (the committed m=6 ratio is ~5.5x): the re-eval
        // arm's absolute time wobbles with the host; the trajectory gate
        // owns the tight relative bound.
        if wl.m == 6 && plane_speedup < 4.0 {
            all_ok = false;
            eprintln!("  WARNING: frontier plane build below the 4x acceptance floor");
        }

        // --- full greedy run: naive vs delta evaluation ---
        let params = Params::new(wl.k, wl.l, 2);
        let run_naive_ms = time_best_ms(2, || {
            hybrid_with(&answers, &index, &params, 5, EvalMode::Naive).unwrap()
        });
        let run_delta_ms = time_best_ms(2, || {
            hybrid_with(&answers, &index, &params, 5, EvalMode::Delta).unwrap()
        });
        eprintln!(
            "  hybrid run: naive {run_naive_ms:.1} ms, delta {run_delta_ms:.1} ms ({:.1}x)",
            run_naive_ms / run_delta_ms
        );

        let mut s = String::new();
        write!(
            s,
            r#"    {{
      "m": {m}, "n": {n}, "l": {l}, "k": {k}, "candidates": {cands},
      "candidate_build": {{
        "naive_scan_ms": {naive_ms:.3},
        "sequential_ms": {seq_ms:.3},
        "parallel_ms": {par_ms:.3},
        "parallel_threads": {threads},
        "indexed_speedup_vs_naive": {idx_speedup:.2},
        "parallel_speedup_vs_sequential": {par_speedup:.2}
      }},
      "greedy_marginals": {{
        "dense_candidates": {dense_cands},
        "states": [
{states}
        ],
        "speedup": {late_speedup:.2},
        "all_candidates_mid_naive_ms": {agg_naive_ms:.4},
        "all_candidates_mid_fused_ms": {agg_fused_ms:.4}
      }},
      "delta_greedy": {{
        "naive_run_ms": {run_naive_ms:.3},
        "delta_run_ms": {run_delta_ms:.3},
        "speedup": {delta_speedup:.2}
      }}
    }}"#,
            m = wl.m,
            n = answers.len(),
            l = wl.l,
            k = wl.k,
            cands = index.len(),
            idx_speedup = naive_ms / seq_ms,
            par_speedup = seq_ms / par_ms,
            dense_cands = dense_ids.len(),
            states = state_sections.join(",\n"),
            delta_speedup = run_naive_ms / run_delta_ms,
        )
        .expect("string write");
        sections.push(s);
    }

    let query_exec = bench_query_exec(&mut all_ok);
    let n_scaling = bench_n_scaling(threads, &mut all_ok);
    let session_tick = bench_session_tick(&mut all_ok);
    let store_warm_start = bench_store_warm_start(&mut all_ok);
    let progressive = bench_progressive_first_paint(&mut all_ok);
    let plane_build = format!(
        "  \"plane_build\": {{\n    \"what\": \"cold (k,D)-plane precomputation (k in [1,50], D in [0,m], pool=2*k_max, Arc-shared index): per-round re-eval engine vs merge-frontier engine, all stored solutions asserted byte-identical first\",\n    \"workloads\": [\n{}\n    ]\n  }}",
        plane_sections.join(",\n")
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath_baseline\",\n  \"n_target\": {N},\n  \"threads\": {threads},\n{query_exec},\n{n_scaling},\n{session_tick},\n{store_warm_start},\n{progressive},\n{plane_build},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        sections.join(",\n")
    );
    // Always resolve against the repository root — running from a crate
    // directory must not scatter stray baseline files (the trajectory
    // gate would then diff against nothing).
    let out = repo_root().join("BENCH_hotpath.json");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("{json}");
    eprintln!("wrote {}", out.display());
    if !all_ok {
        eprintln!("hotpath_baseline: speedup bar missed (see warnings above)");
        std::process::exit(1);
    }
}
