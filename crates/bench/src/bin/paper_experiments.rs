//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p qagview-bench --bin paper-experiments            # all
//! cargo run --release -p qagview-bench --bin paper-experiments -- fig5 fig6
//! ```
//!
//! Output is the textual equivalent of each figure: the same rows/series
//! the paper plots, with this reproduction's measured values. EXPERIMENTS.md
//! records the paper-vs-measured comparison.

use qagview::baselines::{
    decision_tree, disc_diverse_subset, diversified_topk, mmr_select, smart_drilldown, RuleSource,
};
use qagview::prelude::*;
use qagview::userstudy::{run_study, StudyConfig, StudyReport};
use qagview::viz::{band_crossings, total_distance};
use qagview_bench::{example_1_1_answers, movielens_answers, synthetic_answers, tpcds_answers};
use qagview_core::{
    bottom_up, brute_force, fixed_order, BottomUpOptions, BruteForceOptions, EvalMode, Seeding,
};
use qagview_lattice::CandidateIndex;
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn header(name: &str, what: &str) {
    println!("\n================================================================");
    println!("{name}: {what}");
    println!("================================================================");
}

/// Fig. 1: the running example's two-layer output.
fn fig1() {
    header(
        "fig1",
        "Example 1.1 workload, k=4, L=8, D=2 (paper Fig. 1a-1c)",
    );
    let answers = example_1_1_answers(42).expect("workload");
    println!("n = {} answer groups (m = 4)", answers.len());
    println!("-- top-8 / bottom-8 (Fig. 1a) --");
    let n = answers.len();
    for rank in (0..8.min(n)).chain(n.saturating_sub(8)..n) {
        let t = rank as u32;
        let row: Vec<&str> = (0..4)
            .map(|i| answers.code_text(i, answers.tuple(t)[i]))
            .collect();
        println!(
            "  {:>3}. {} | {:.2}",
            rank + 1,
            row.join(", "),
            answers.val(t)
        );
    }
    let summarizer = Summarizer::new(&answers, 8).expect("index");
    let sol = summarizer.hybrid(4, 2).expect("solution");
    println!("-- clusters + second layer (Fig. 1b/1c) --");
    print!("{}", sol.render(&answers, true));
}

/// Fig. 2 + §7.2 guidance timing.
fn fig2() {
    header(
        "fig2",
        "parameter-selection guidance: avg value vs k per D (L=15)",
    );
    let answers = example_1_1_answers(42).expect("workload");
    let l = 15.min(answers.len());
    let t = Instant::now();
    let pre = Precomputed::build(
        &answers,
        l,
        PrecomputeConfig {
            k_min: 2,
            k_max: 15,
            d_min: 1,
            d_max: 4,
            ..Default::default()
        },
    )
    .expect("precompute");
    let plot = pre.guidance();
    let build_ms = ms(t);
    println!("generation time (precompute + series): {build_ms:.1} ms (paper: 20-40 ms)");
    print!("k:     ");
    for k in &plot.k_values {
        print!("{k:>7}");
    }
    println!();
    for s in &plot.series {
        print!("D={}:   ", s.d);
        for v in &s.avg_by_k {
            print!("{v:>7.3}");
        }
        println!();
    }
    for d in 1..=4 {
        println!(
            "D={d}: knees {:?}, flat regions {:?}",
            plot.knees(d, 0.002),
            plot.flat_regions(d, 0.0005)
        );
    }
    // §7.2: guidance generation across m.
    println!("-- guidance generation time vs m (paper: 20-40 ms for m in 4..10) --");
    for (m, having) in [(4usize, 30usize), (6, 30), (8, 20), (10, 8)] {
        let answers = movielens_answers(m, having, 42).expect("workload");
        let l = 15.min(answers.len());
        let t = Instant::now();
        let pre = Precomputed::build(
            &answers,
            l,
            PrecomputeConfig {
                k_min: 2,
                k_max: 15,
                d_min: 1,
                d_max: 3,
                ..Default::default()
            },
        )
        .expect("precompute");
        let _ = pre.guidance();
        println!("  m={m}: n={}, generation {:.1} ms", answers.len(), ms(t));
    }
}

/// Fig. 5: brute force vs heuristics (runtime and value), L=5, D=3.
fn fig5() {
    header("fig5", "comparison with brute force: L=5, D=3, k=2..4");
    let answers = example_1_1_answers(42).expect("workload");
    let l = 5;
    let index = CandidateIndex::build(&answers, l).expect("index");
    let lower_bound = {
        let total: f64 = answers.vals().iter().sum();
        total / answers.len() as f64
    };
    println!(
        "{:<14} {:>4} {:>14} {:>10}",
        "algorithm", "k", "runtime (ms)", "avg value"
    );
    for k in 2..=4usize {
        let params = Params::new(k, l, 3);
        let t = Instant::now();
        let bf = brute_force(&answers, &index, &params, BruteForceOptions::default()).unwrap();
        println!("{:<14} {:>4} {:>14.3} {:>10.4}", "BF", k, ms(t), bf.avg());

        let t = Instant::now();
        let bu = bottom_up(&answers, &index, &params, BottomUpOptions::default()).unwrap();
        println!(
            "{:<14} {:>4} {:>14.3} {:>10.4}",
            "Bottom-Up",
            k,
            ms(t),
            bu.avg()
        );

        let t = Instant::now();
        let fo = fixed_order(&answers, &index, &params, Seeding::None, EvalMode::Delta).unwrap();
        println!(
            "{:<14} {:>4} {:>14.3} {:>10.4}",
            "Fixed-Order",
            k,
            ms(t),
            fo.avg()
        );

        let t = Instant::now();
        let hy = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        println!(
            "{:<14} {:>4} {:>14.3} {:>10.4}",
            "Hybrid",
            k,
            ms(t),
            hy.avg()
        );

        // Randomized variants: average over 20 seeded runs.
        for (name, mk) in [("Random", true), ("K-Means", false)] {
            let t = Instant::now();
            let mut sum = 0.0;
            let runs = 20;
            for seed in 0..runs {
                let seeding = if mk {
                    Seeding::Random { seed }
                } else {
                    Seeding::KMeans { seed, max_iter: 20 }
                };
                sum += fixed_order(&answers, &index, &params, seeding, EvalMode::Delta)
                    .unwrap()
                    .avg();
            }
            println!(
                "{:<14} {:>4} {:>14.3} {:>10.4}",
                name,
                k,
                ms(t) / runs as f64,
                sum / runs as f64
            );
        }
        println!(
            "{:<14} {:>4} {:>14} {:>10.4}",
            "Lower Bound", k, "-", lower_bound
        );
    }
}

/// Fig. 6: runtime/value vs k, L, D, and m.
fn fig6() {
    header(
        "fig6",
        "varying parameters on MovieLens (defaults m=8, k=3, L=40, D=3)",
    );
    let answers = movielens_answers(8, 20, 42).expect("workload");
    println!("n = {} answer groups (m = 8)", answers.len());

    println!("-- (a,b) vary k in {{5,10,20,40}} (L=40, D=3) --");
    let index = CandidateIndex::build(&answers, 40.min(answers.len())).expect("index");
    let l = index.l();
    println!(
        "{:<6} {:>12} {:>12} {:>12}  {:>8} {:>8} {:>8}",
        "k", "BU ms", "FO ms", "HY ms", "BU avg", "FO avg", "HY avg"
    );
    for k in [5usize, 10, 20, 40] {
        let params = Params::new(k, l, 3);
        let t = Instant::now();
        let bu = bottom_up(&answers, &index, &params, BottomUpOptions::default()).unwrap();
        let bu_ms = ms(t);
        let t = Instant::now();
        let fo = fixed_order(&answers, &index, &params, Seeding::None, EvalMode::Delta).unwrap();
        let fo_ms = ms(t);
        let t = Instant::now();
        let hy = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let hy_ms = ms(t);
        println!(
            "{k:<6} {bu_ms:>12.3} {fo_ms:>12.3} {hy_ms:>12.3}  {:>8.4} {:>8.4} {:>8.4}",
            bu.avg(),
            fo.avg(),
            hy.avg()
        );
    }

    println!("-- (c,d) vary L in {{3,9,27,81}} (k=3, D=3) --");
    println!(
        "{:<6} {:>12} {:>12} {:>12}  {:>8} {:>8} {:>8}",
        "L", "BU ms", "FO ms", "HY ms", "BU avg", "FO avg", "HY avg"
    );
    for l in [3usize, 9, 27, 81] {
        let l = l.min(answers.len());
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(3, l, 3);
        let t = Instant::now();
        let bu = bottom_up(&answers, &index, &params, BottomUpOptions::default()).unwrap();
        let bu_ms = ms(t);
        let t = Instant::now();
        let fo = fixed_order(&answers, &index, &params, Seeding::None, EvalMode::Delta).unwrap();
        let fo_ms = ms(t);
        let t = Instant::now();
        let hy = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let hy_ms = ms(t);
        println!(
            "{l:<6} {bu_ms:>12.3} {fo_ms:>12.3} {hy_ms:>12.3}  {:>8.4} {:>8.4} {:>8.4}",
            bu.avg(),
            fo.avg(),
            hy.avg()
        );
    }

    println!("-- (e,f) vary D in 1..6 (k=10, L=40) --");
    let index = CandidateIndex::build(&answers, 40.min(answers.len())).expect("index");
    let l = index.l();
    println!(
        "{:<6} {:>12} {:>12} {:>12}  {:>8} {:>8} {:>8}",
        "D", "BU ms", "FO ms", "HY ms", "BU avg", "FO avg", "HY avg"
    );
    for d in 1..=6usize {
        let params = Params::new(10, l, d);
        let t = Instant::now();
        let bu = bottom_up(&answers, &index, &params, BottomUpOptions::default()).unwrap();
        let bu_ms = ms(t);
        let t = Instant::now();
        let fo = fixed_order(&answers, &index, &params, Seeding::None, EvalMode::Delta).unwrap();
        let fo_ms = ms(t);
        let t = Instant::now();
        let hy = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let hy_ms = ms(t);
        println!(
            "{d:<6} {bu_ms:>12.3} {fo_ms:>12.3} {hy_ms:>12.3}  {:>8.4} {:>8.4} {:>8.4}",
            bu.avg(),
            fo.avg(),
            hy.avg()
        );
    }

    println!("-- (g,h) vary m in {{4,6,8,10}} (k=L=20, D=3): init + algorithm --");
    println!(
        "{:<6} {:>6} {:>14} {:>12} {:>12} {:>12}",
        "m", "n", "init (ms)", "BU ms", "FO ms", "HY ms"
    );
    // Per-m HAVING thresholds keeping n in the paper's 140-280 band.
    for (m, having) in [(4usize, 30usize), (6, 30), (8, 20), (10, 8)] {
        let answers = movielens_answers(m, having, 42).expect("workload");
        let l = 20.min(answers.len());
        let t = Instant::now();
        let index = CandidateIndex::build(&answers, l).expect("index");
        let init_ms = ms(t);
        let params = Params::new(20, l, 3.min(answers.arity()));
        let t = Instant::now();
        let _ = bottom_up(&answers, &index, &params, BottomUpOptions::default()).unwrap();
        let bu_ms = ms(t);
        let t = Instant::now();
        let _ = fixed_order(&answers, &index, &params, Seeding::None, EvalMode::Delta).unwrap();
        let fo_ms = ms(t);
        let t = Instant::now();
        let _ = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let hy_ms = ms(t);
        println!(
            "{m:<6} {:>6} {init_ms:>14.2} {bu_ms:>12.3} {fo_ms:>12.3} {hy_ms:>12.3}",
            answers.len()
        );
    }
}

/// Fig. 7: cost and benefit of precomputation.
fn fig7() {
    header(
        "fig7",
        "precomputation cost/benefit on synthetic answers (m=8)",
    );

    println!("-- (a) precompute runtime vs target k (L=1000, D=2, N=2087, pool=2x100) --");
    // The paper's fig 7a: descend from a shared pool down to the user's
    // target k; larger targets stop earlier, so runtime decreases with k.
    let answers = synthetic_answers(2087, 8, 7).expect("workload");
    let t = Instant::now();
    let index = CandidateIndex::build(&answers, 1000).expect("index");
    println!("  init (shared across k): {:.1} ms", ms(t));
    for k in [5usize, 10, 20, 50, 100] {
        let t = Instant::now();
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: k,
                k_max: 100,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .expect("precompute");
        println!(
            "  k={k:<4} precompute {:>9.1} ms  ({} intervals)",
            ms(t),
            pre.stored_intervals()
        );
    }

    println!("-- (b) single runs vs precomputation over 6 runs (N=6955, L=500, D=2) --");
    let answers = synthetic_answers(6955, 8, 11).expect("workload");
    let l = 500;
    let ks = [20usize, 15, 10, 18, 12, 8];
    let t = Instant::now();
    let summarizer = Summarizer::new(&answers, l).expect("index");
    let single_init_ms = ms(t);
    let mut single_cum = single_init_ms;
    print!("  single:      init {single_init_ms:>8.1} ms");
    for (i, &k) in ks.iter().enumerate() {
        let t = Instant::now();
        let _ = summarizer.hybrid(k, 2).unwrap();
        single_cum += ms(t);
        print!("  run{}@{:.0}ms", i + 1, single_cum);
    }
    println!();
    let t = Instant::now();
    let pre = Precomputed::build(
        &answers,
        l,
        PrecomputeConfig {
            k_min: 1,
            k_max: 20,
            d_min: 2,
            d_max: 2,
            ..Default::default()
        },
    )
    .expect("precompute");
    let mut pre_cum = ms(t);
    print!("  precompute:  build {pre_cum:>7.1} ms");
    for (i, &k) in ks.iter().enumerate() {
        let t = Instant::now();
        let _ = pre.solution(k, 2).unwrap();
        pre_cum += ms(t);
        print!("  run{}@{:.0}ms", i + 1, pre_cum);
    }
    println!();

    println!("-- (c,d) single vs precompute vs L (k=20, D=2, N=2087) --");
    let answers = synthetic_answers(2087, 8, 7).expect("workload");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "L", "init ms", "single ms", "precompute ms", "retrieval ms"
    );
    for l in [200usize, 500, 1000] {
        let t = Instant::now();
        let index = CandidateIndex::build(&answers, l).expect("index");
        let init_ms = ms(t);
        let params = Params::new(20, l, 2);
        let t = Instant::now();
        let _ = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let single_ms = ms(t);
        let t = Instant::now();
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: 1,
                k_max: 20,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let pre_ms = ms(t);
        let t = Instant::now();
        for k in 1..=20 {
            let _ = pre.solution(k, 2).unwrap();
        }
        let retr_ms = ms(t) / 20.0;
        println!("{l:<8} {init_ms:>12.1} {single_ms:>12.2} {pre_ms:>14.1} {retr_ms:>14.3}");
    }

    println!("-- (e,f) single vs precompute vs N (k=20, L=500, D=2) --");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "N", "init ms", "single ms", "precompute ms", "retrieval ms"
    );
    for n in [927usize, 2087, 6955] {
        let answers = synthetic_answers(n, 8, 7).expect("workload");
        let l = 500.min(answers.len());
        let t = Instant::now();
        let index = CandidateIndex::build(&answers, l).expect("index");
        let init_ms = ms(t);
        let params = Params::new(20, l, 2);
        let t = Instant::now();
        let _ = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let single_ms = ms(t);
        let t = Instant::now();
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: 1,
                k_max: 20,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let pre_ms = ms(t);
        let t = Instant::now();
        let _ = pre.solution(20, 2).unwrap();
        let retr_ms = ms(t);
        println!("{n:<8} {init_ms:>12.1} {single_ms:>12.2} {pre_ms:>14.1} {retr_ms:>14.3}");
    }
}

/// Fig. 8: effect of the two §6.3 optimizations.
fn fig8() {
    header("fig8", "optimization ablations (N=2087, m=8, k=20, D=2)");
    let answers = synthetic_answers(2087, 8, 7).expect("workload");

    println!("-- (a) initialization: indexed candidate generation vs naive scan --");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "L", "with opt (ms)", "without opt (ms)", "speedup"
    );
    for l in [200usize, 500, 1000] {
        let t = Instant::now();
        let fast = CandidateIndex::build(&answers, l).expect("indexed");
        let fast_ms = ms(t);
        let t = Instant::now();
        let slow = CandidateIndex::build_naive(&answers, l).expect("naive");
        let slow_ms = ms(t);
        assert_eq!(fast.len(), slow.len());
        println!(
            "{l:<8} {fast_ms:>16.1} {slow_ms:>16.1} {:>9.0}x",
            slow_ms / fast_ms.max(1e-9)
        );
    }

    println!("-- (b) algorithm: Delta Judgment vs naive marginals (Hybrid, pool 5k) --");
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "L", "with delta (ms)", "without (ms)", "speedup"
    );
    for l in [200usize, 500, 1000] {
        let index = CandidateIndex::build(&answers, l).expect("index");
        let params = Params::new(20, l, 2);
        let t = Instant::now();
        let delta =
            qagview_core::hybrid_with(&answers, &index, &params, 5, EvalMode::Delta).unwrap();
        let delta_ms = ms(t);
        let t = Instant::now();
        let naive =
            qagview_core::hybrid_with(&answers, &index, &params, 5, EvalMode::Naive).unwrap();
        let naive_ms = ms(t);
        assert_eq!(
            delta.patterns(),
            naive.patterns(),
            "ablation must not change output"
        );
        println!(
            "{l:<8} {delta_ms:>16.2} {naive_ms:>16.2} {:>9.1}x",
            naive_ms / delta_ms.max(1e-9)
        );
    }

    println!("-- (c) hash values for fields: interned codes vs raw strings --");
    // Isolate the field representation: evaluate the same coverage workload
    // (every top-L singleton's generalizations against all n tuples) over
    // interned u32 codes vs owned strings (paper: ~50x from interning).
    let string_rows: Vec<Vec<String>> = (0..answers.len() as u32)
        .map(|t| {
            (0..answers.arity())
                .map(|i| answers.code_text(i, answers.tuple(t)[i]).to_string())
                .collect()
        })
        .collect();
    for l in [50usize, 100] {
        let t = Instant::now();
        let mut interned_hits = 0usize;
        for top in 0..l as u32 {
            qagview_lattice::Pattern::for_each_generalization(answers.tuple(top), |slots| {
                let p = qagview_lattice::Pattern::new(slots.to_vec());
                for tu in 0..answers.len() as u32 {
                    if p.covers_tuple(answers.tuple(tu)) {
                        interned_hits += 1;
                    }
                }
            });
        }
        let interned_ms = ms(t);
        let t = Instant::now();
        let mut string_hits = 0usize;
        for top in 0..l {
            let top_row = &string_rows[top];
            let m = top_row.len();
            for mask in 0u32..(1 << m) {
                for row in &string_rows {
                    let covers = (0..m).all(|i| mask >> i & 1 == 1 || top_row[i] == row[i]);
                    if covers {
                        string_hits += 1;
                    }
                }
            }
        }
        let string_ms = ms(t);
        assert_eq!(interned_hits, string_hits, "representations must agree");
        println!(
            "  L={l:<5} interned {interned_ms:>9.1} ms   strings {string_ms:>9.1} ms   {:>5.1}x",
            string_ms / interned_ms.max(1e-9)
        );
    }
}

/// Fig. 9: TPC-DS scalability.
fn fig9() {
    header("fig9", "TPC-DS store_sales scalability (k=20, D=2)");
    let t = Instant::now();
    let answers = tpcds_answers(288_040, 1, 7).expect("workload");
    println!(
        "workload: N = {} answer groups (m = 8) generated+queried in {:.1} ms",
        answers.len(),
        ms(t)
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "L", "init ms", "single ms", "precompute ms", "retrieval ms"
    );
    for l in [500usize, 1000, 2000] {
        let t = Instant::now();
        let index = CandidateIndex::build(&answers, l).expect("index");
        let init_ms = ms(t);
        let params = Params::new(20, l, 2);
        let t = Instant::now();
        let _ = qagview_core::hybrid(&answers, &index, &params, EvalMode::Delta).unwrap();
        let single_ms = ms(t);
        let t = Instant::now();
        let pre = Precomputed::build_with_index(
            &answers,
            index.clone(),
            PrecomputeConfig {
                k_min: 1,
                k_max: 20,
                d_min: 2,
                d_max: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let pre_ms = ms(t);
        let t = Instant::now();
        let _ = pre.solution(20, 2).unwrap();
        let retr_ms = ms(t);
        println!("{l:<8} {init_ms:>12.1} {single_ms:>12.2} {pre_ms:>14.1} {retr_ms:>14.3}");
    }
}

/// Fig. 16: comparison-visualization layout quality and timing.
fn fig16() {
    header("fig16", "matched vs default placement (D=2)");
    let answers = movielens_answers(4, 20, 42).expect("workload");
    println!(
        "{:<4} {:>10} {:>16} {:>14} {:>16} {:>14} {:>12}",
        "k",
        "(L1,L2)",
        "default dist",
        "default cross",
        "matched dist",
        "matched cross",
        "match ms"
    );
    for (k, l1, l2) in [(5usize, 8usize, 10usize), (10, 15, 20), (20, 30, 40)] {
        let l1 = l1.min(answers.len());
        let l2 = l2.min(answers.len());
        let s1 = Summarizer::new(&answers, l1).unwrap().hybrid(k, 2).unwrap();
        let s2 = Summarizer::new(&answers, l2).unwrap().hybrid(k, 2).unwrap();
        let tr = Transition::between(&answers, &s1, &s2, l2);
        let default = Placement::default_order(tr.right_len());
        let t = Instant::now();
        let (matched, matched_cost) = optimal_placement(&tr);
        let match_ms = ms(t);
        println!(
            "{k:<4} {:>10} {:>16.1} {:>14} {:>16.1} {:>14} {:>12.3}",
            format!("({l1},{l2})"),
            total_distance(&tr, &default),
            band_crossings(&tr, &default),
            matched_cost,
            band_crossings(&tr, &matched),
            match_ms
        );
    }
    // Timing vs brute force (paper: <10 ms matching vs >2 s brute at k=10).
    let s1 = Summarizer::new(&answers, 15.min(answers.len()))
        .unwrap()
        .hybrid(8, 2)
        .unwrap();
    let s2 = Summarizer::new(&answers, 20.min(answers.len()))
        .unwrap()
        .hybrid(8, 2)
        .unwrap();
    let tr = Transition::between(&answers, &s1, &s2, 20.min(answers.len()));
    let t = Instant::now();
    let (_, hungarian_cost) = optimal_placement(&tr);
    let fast_ms = ms(t);
    let n = tr.right_len();
    let cost_matrix: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            (0..n)
                .map(|v| {
                    (0..tr.left_len())
                        .map(|i| tr.overlaps[i][u] as f64 * (i as f64 - v as f64).abs())
                        .sum()
                })
                .collect()
        })
        .collect();
    let t = Instant::now();
    let (_, brute_cost) = qagview::viz::hungarian::min_cost_assignment_brute(&cost_matrix);
    let brute_ms = ms(t);
    println!(
        "timing at k={n}: Hungarian {fast_ms:.3} ms vs brute force {brute_ms:.1} ms (costs {hungarian_cost:.1} == {brute_cost:.1})"
    );
}

/// Tables 1 & 2: the simulated user study.
fn table1() {
    header(
        "table1+table2",
        "simulated user study (16 subjects, 3 task groups)",
    );
    let answers = movielens_answers(4, 30, 42).expect("workload");
    println!("workload: n = {} answer groups", answers.len());
    let report = run_study(&answers, &StudyConfig::default()).expect("study");
    print!("{}", report.render());
    let _ = StudyReport::render_table(&report.table1);
}

/// App. A.5: qualitative baseline comparison.
fn table_a5() {
    header(
        "tableA5",
        "qualitative comparison with related approaches (k=4, D=2, L=10)",
    );
    let answers = example_1_1_answers(42).expect("workload");
    let l = 10.min(answers.len());
    let summarizer = Summarizer::new(&answers, l).expect("index");
    let ours = summarizer.hybrid(4, 2).expect("ours");
    println!("-- qagview (avg {:.3}) --", ours.avg());
    print!("{}", ours.render(&answers, false));

    for (label, source) in [
        ("top-10", RuleSource::TopL(l)),
        ("all elements", RuleSource::AllElements),
    ] {
        println!("-- smart drill-down on {label} --");
        for r in smart_drilldown(&answers, 4, source).expect("drill-down") {
            println!(
                "  {}  W={} MCount={} avg={:.2}",
                answers.pattern_to_string(&r.pattern),
                r.weight,
                r.marginal_count,
                r.avg_val
            );
        }
    }

    println!("-- diversified top-k --");
    for p in diversified_topk(&answers, l, 4, 2).expect("divtopk") {
        let row: Vec<&str> = (0..answers.arity())
            .map(|i| answers.code_text(i, answers.tuple(p.tuple)[i]))
            .collect();
        println!(
            "  {} | score {:.2} | nbhd avg {:.2}",
            row.join(", "),
            p.score,
            p.neighborhood_avg
        );
    }

    println!("-- DisC diversity (r=2) --");
    for t in disc_diverse_subset(&answers, l, 2).expect("disc") {
        let row: Vec<&str> = (0..answers.arity())
            .map(|i| answers.code_text(i, answers.tuple(t)[i]))
            .collect();
        println!("  {} | score {:.2}", row.join(", "), answers.val(t));
    }

    for lambda in [0.0, 0.5, 1.0] {
        println!("-- MMR λ={lambda} --");
        for t in mmr_select(&answers, l, 4, lambda).expect("mmr") {
            let row: Vec<&str> = (0..answers.arity())
                .map(|i| answers.code_text(i, answers.tuple(t)[i]))
                .collect();
            println!("  {} | score {:.2}", row.join(", "), answers.val(t));
        }
    }

    println!("-- decision tree (positive leaves <= 4) --");
    match decision_tree::fit_for_k(&answers, l, 4) {
        Ok(tree) => {
            for rule in tree.rules() {
                println!(
                    "  {}  [{} top / {} other, avg {:.2}]",
                    rule.render(&answers),
                    rule.positives,
                    rule.negatives,
                    rule.avg_val
                );
            }
        }
        Err(e) => println!("  (no suitable tree: {e})"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let t0 = Instant::now();
    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("fig16") {
        fig16();
    }
    if want("table1") || want("table2") {
        table1();
    }
    if want("tableA5") {
        table_a5();
    }
    println!("\ntotal: {:.1} s", t0.elapsed().as_secs_f64());
}
