//! CI network-chaos soak driver: the wire-level twin of `chaos` (which
//! sweeps storage faults). Three phases against real TCP servers:
//!
//! 1. **Fault matrix** — enumerate network fault kind × injection point
//!    (stride-sampled op index) × concurrent sessions, each trial on a
//!    fresh server whose every connection is wrapped in a scripted
//!    [`qagview_serve::FaultStream`]. A retry-tolerant client
//!    (reconnect + resend; the
//!    command vocabulary is absolute-state, so a resend is idempotent)
//!    must end every session with view digests byte-identical to a
//!    fault-free sequential oracle, with no panic anywhere.
//! 2. **Kill-at-op matrix** — a client checkpoints after every confirmed
//!    command; the server is killed (no drain, no checkpoint sweep)
//!    after command K, restarted over the same directory, and the client
//!    resumes from its last confirmed step. Every resumed digest must
//!    match the oracle and the first resumed response must be flagged
//!    `restored`.
//! 3. **Drain** — a draining server must checkpoint every resident
//!    session and a restart must restore them bit-identically, with the
//!    drain counters populated.
//!
//! ```text
//! chaos_net [--stride N] [--sessions S] [--log <event-log.json>]
//! ```
//!
//! Any violation is recorded in the event log (the CI artifact) and
//! fails the process with a nonzero exit.

use qagview_bench::json;
use qagview_interactive::{Explorer, ExplorerConfig};
use qagview_serve::{
    Gateway, GatewayConfig, NetFaultKind, NetFaultPlan, NetScript, Server, ServerConfig,
    SessionConfig, ALL_NET_FAULT_KINDS,
};
use qagview_storage::{Catalog, Cell, ColumnType, Schema, TableBuilder};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const SQL: &str = "SELECT genre, who, AVG(rating) AS val FROM ratings \
                   GROUP BY genre, who HAVING count(*) > 0 ORDER BY val DESC";

fn catalog() -> Arc<Catalog> {
    let schema = Schema::from_pairs(&[
        ("genre", ColumnType::Str),
        ("who", ColumnType::Str),
        ("rating", ColumnType::Float),
    ])
    .expect("schema");
    let mut b = TableBuilder::new(schema);
    let rows: &[(&str, &str, f64)] = &[
        ("adventure", "student", 4.75),
        ("adventure", "student", 4.5),
        ("adventure", "coder", 4.25),
        ("adventure", "coder", 4.0),
        ("adventure", "artist", 3.75),
        ("romance", "student", 2.0),
        ("romance", "coder", 1.5),
        ("romance", "coder", 1.25),
        ("romance", "artist", 2.25),
        ("western", "student", 3.0),
        ("western", "coder", 3.5),
        ("western", "artist", 2.75),
        ("scifi", "student", 4.0),
        ("scifi", "coder", 3.25),
        ("scifi", "artist", 3.0),
    ];
    for &(g, w, r) in rows {
        b.push_row(vec![g.into(), w.into(), Cell::Float(r)])
            .expect("row");
    }
    let mut c = Catalog::new();
    c.register("ratings", b.finish());
    Arc::new(c)
}

/// Scripted sessions of absolute-state commands (safe to resend after a
/// transport failure: re-applying yields the same view).
fn script(variant: usize) -> Vec<String> {
    let set_query = format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#);
    let common: Vec<String> = vec![
        set_query,
        r#"{"cmd":"set_k","value":3}"#.into(),
        r#"{"cmd":"set_l","value":6}"#.into(),
    ];
    let tail: Vec<String> = match variant % 4 {
        0 => vec![
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
            r#"{"cmd":"set_d","value":1}"#.into(),
        ],
        1 => vec![
            r#"{"cmd":"set_d","value":1}"#.into(),
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_threshold","value":0}"#.into(),
        ],
        2 => vec![
            r#"{"cmd":"set_k","value":4}"#.into(),
            r#"{"cmd":"set_l","value":4}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
        ],
        _ => vec![
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
            r#"{"cmd":"set_threshold","value":0}"#.into(),
        ],
    };
    common.into_iter().chain(tail).collect()
}

/// Per-step oracle digests. `full` covers the whole serialized view;
/// `stable` drops the `transition` panel, which is a delta from the
/// *previous* view: when a transport failure forces a resend, the
/// command double-applies — the resulting state, summary, and plot are
/// identical (absolute-state commands), but the retried step's
/// transition legitimately describes a self-transition. So a step
/// confirmed on the first attempt must match `full` byte for byte, and
/// a retried step must match `stable`.
struct StepOracle {
    full: String,
    stable: String,
}

fn checksum_hex(text: &str) -> String {
    format!("{:016x}", qagview_common::wire::checksum64(text.as_bytes()))
}

fn stable_digest(view: &json::Json) -> String {
    let mut v = view.clone();
    if let json::Json::Obj(map) = &mut v {
        map.remove("transition");
    }
    checksum_hex(&v.to_text())
}

/// Fault-free oracle: per-variant, per-step response digests from a bare
/// sequential [`qagview_interactive::ExploreSession`] replay.
fn oracle_digests(catalog: &Arc<Catalog>, variants: usize) -> Vec<Vec<StepOracle>> {
    (0..variants)
        .map(|v| {
            let engine = Arc::new(Explorer::from_shared(
                Arc::clone(catalog),
                ExplorerConfig::default(),
            ));
            let mut session = engine
                .open_session(qagview_interactive::SessionSpec::default())
                .expect("open oracle session");
            script(v)
                .iter()
                .map(|body| {
                    let cmd =
                        qagview_serve::parse_command(body.as_bytes()).expect("script command");
                    let resp = session.apply(cmd).expect("oracle step");
                    let view = qagview_serve::view_json(&resp);
                    StepOracle {
                        full: checksum_hex(&view.to_text()),
                        stable: stable_digest(&view),
                    }
                })
                .collect()
        })
        .collect()
}

/// Check one confirmed response against the oracle for its step.
fn digest_matches(resp: &str, oracle: &StepOracle, retried: bool) -> bool {
    if retried {
        json::parse(resp)
            .ok()
            .and_then(|d| d.get("view").cloned())
            .is_some_and(|v| stable_digest(&v) == oracle.stable)
    } else {
        digest_of(resp).as_deref() == Some(&oracle.full)
    }
}

fn gateway(catalog: &Arc<Catalog>, ckpt_dir: Option<PathBuf>) -> Arc<Gateway> {
    let engine = Arc::new(Explorer::from_shared(
        Arc::clone(catalog),
        ExplorerConfig::default(),
    ));
    Arc::new(Gateway::new(
        engine,
        GatewayConfig {
            sessions: SessionConfig {
                checkpoint_dir: ckpt_dir,
                ..SessionConfig::default()
            },
            ..GatewayConfig::default()
        },
    ))
}

fn server_cfg(net_script: Option<Arc<NetScript>>) -> ServerConfig {
    ServerConfig {
        max_connections: 64,
        // Tight budgets keep stall trials fast; injected stalls surface
        // synchronously, so these mostly bound real scheduling noise.
        read_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_millis(2000),
        write_timeout: Duration::from_millis(2000),
        drain_deadline: Duration::from_secs(2),
        net_script,
    }
}

/// A blocking HTTP/1.1 client whose transport failures are values, not
/// panics — chaos clients are supposed to survive them.
struct ChaosClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ChaosClient {
    fn connect(addr: SocketAddr) -> std::io::Result<ChaosClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(ChaosClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content length")
                })?;
            }
        }
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf)?;
        Ok((
            status,
            String::from_utf8(buf)
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8"))?,
        ))
    }
}

fn digest_of(response_body: &str) -> Option<String> {
    json::parse(response_body)
        .ok()?
        .get("digest")
        .and_then(|d| d.as_str().map(str::to_string))
}

fn session_of(response_body: &str) -> Option<String> {
    json::parse(response_body)
        .ok()?
        .get("session")
        .and_then(|s| s.as_str().map(str::to_string))
}

const MAX_ATTEMPTS: usize = 8;

/// Issue one request, reconnecting and resending on transport failure or
/// a retryable refusal (408/503). A sticky crash fault is "rebooted"
/// (the network heals) after it has been observed — the client side of a
/// flapping link. Returns the first definitive `(status, body, retried)`
/// where `retried` records whether the request was sent more than once.
fn request_with_retry(
    client: &mut Option<ChaosClient>,
    addr: SocketAddr,
    net: Option<&Arc<NetScript>>,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, String, bool), String> {
    let mut sent = 0usize;
    for attempt in 0..MAX_ATTEMPTS {
        if client.is_none() {
            match ChaosClient::connect(addr) {
                Ok(c) => *client = Some(c),
                Err(e) => {
                    if attempt + 1 == MAX_ATTEMPTS {
                        return Err(format!("connect failed: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
        }
        let result = client
            .as_mut()
            .expect("client present")
            .request(method, path, body);
        sent += 1;
        match result {
            Ok((status, _resp)) if status == 408 || status == 503 => {
                // A typed, retryable refusal; the server closes after a
                // 408, so start fresh either way.
                *client = None;
            }
            Ok((status, resp)) => return Ok((status, resp, sent > 1)),
            Err(_) => {
                *client = None;
                if let Some(net) = net {
                    if net.is_crashed() {
                        net.reboot();
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    Err(format!("retries exhausted on {method} {path}"))
}

/// Drive one scripted session to completion against a (possibly faulted)
/// server, checking every confirmed digest against the oracle.
fn drive_session(
    addr: SocketAddr,
    net: Option<&Arc<NetScript>>,
    variant: usize,
    oracle: &[Vec<StepOracle>],
) -> Result<(), String> {
    let mut client: Option<ChaosClient> = None;
    let (status, body, _) =
        request_with_retry(&mut client, addr, net, "POST", "/api/session", b"")?;
    if status != 200 {
        return Err(format!("session create refused: {status} {body}"));
    }
    let id = session_of(&body).ok_or("create response without a session id")?;
    let path = format!("/api/session/{id}/command");
    for (step, body) in script(variant).iter().enumerate() {
        let (status, resp, retried) =
            request_with_retry(&mut client, addr, net, "POST", &path, body.as_bytes())?;
        if status != 200 {
            return Err(format!("step {step} refused: {status} {resp}"));
        }
        let expected = &oracle[variant % oracle.len()][step];
        if !digest_matches(&resp, expected, retried) {
            return Err(format!(
                "step {step} digest diverged from the oracle: {resp}"
            ));
        }
    }
    Ok(())
}

struct Trial {
    kind: String,
    at_op: u64,
    sessions: usize,
    faults_fired: usize,
    timeouts: u64,
    net_errors: u64,
    violation: Option<String>,
}

/// One fault-matrix trial: a fresh server with a single scheduled fault,
/// `sessions` concurrent scripted clients, digest-checked to the oracle.
fn run_trial(
    catalog: &Arc<Catalog>,
    oracle: &[Vec<StepOracle>],
    kind: NetFaultKind,
    at_op: u64,
    sessions: usize,
) -> Trial {
    let net = Arc::new(NetScript::with_plan(vec![NetFaultPlan { at_op, kind }]));
    let gw = gateway(catalog, None);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut srv = Server::start(
            Arc::clone(&gw),
            "127.0.0.1:0",
            server_cfg(Some(Arc::clone(&net))),
        )
        .expect("bind trial server");
        let addr = srv.addr();
        let errors: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|v| {
                    let net = Arc::clone(&net);
                    scope.spawn(move || drive_session(addr, Some(&net), v, oracle))
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(Ok(())) => None,
                    Ok(Err(e)) => Some(e),
                    Err(_) => Some("client thread panicked".into()),
                })
                .collect()
        });
        srv.shutdown();
        errors
    }));
    let violation = match outcome {
        Err(_) => Some("server-side panic".to_string()),
        Ok(errors) if !errors.is_empty() => Some(errors.join("; ")),
        Ok(_) => None,
    };
    let m = gw.metrics();
    Trial {
        kind: kind.name().to_string(),
        at_op,
        sessions,
        faults_fired: net.faults_fired(),
        timeouts: m.request_timeouts.load(Ordering::Relaxed)
            + m.idle_closes.load(Ordering::Relaxed)
            + m.write_timeouts.load(Ordering::Relaxed)
            + m.deadline_exceeded.load(Ordering::Relaxed),
        net_errors: m.net_errors.load(Ordering::Relaxed)
            + m.protocol_errors.load(Ordering::Relaxed),
        violation,
    }
}

struct KillTrial {
    kill_after: usize,
    violation: Option<String>,
}

/// Kill-at-op: checkpoint after every confirmed command, kill the server
/// (no drain) after `kill_after` commands, restart over the same
/// directory, resume from the last confirmed step.
fn run_kill_trial(
    catalog: &Arc<Catalog>,
    oracle: &[Vec<StepOracle>],
    dir: &Path,
    kill_after: usize,
) -> KillTrial {
    let variant = kill_after % 4;
    let bodies = script(variant);
    let fail = |msg: String| KillTrial {
        kill_after,
        violation: Some(msg),
    };
    if dir.exists() {
        std::fs::remove_dir_all(dir).expect("reset kill dir");
    }
    std::fs::create_dir_all(dir).expect("create kill dir");

    let gw = gateway(catalog, Some(dir.to_path_buf()));
    let mut srv =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", server_cfg(None)).expect("bind kill server");
    let mut client = Some(ChaosClient::connect(srv.addr()).expect("connect"));
    let (status, body, _) =
        match request_with_retry(&mut client, srv.addr(), None, "POST", "/api/session", b"") {
            Ok(r) => r,
            Err(e) => return fail(e),
        };
    if status != 200 {
        return fail(format!("create refused: {status} {body}"));
    }
    let id = session_of(&body).expect("session id");
    let cmd_path = format!("/api/session/{id}/command");
    let ckpt_path = format!("/api/session/{id}/checkpoint");
    for (step, body) in bodies.iter().take(kill_after).enumerate() {
        let c = client.as_mut().expect("live client");
        match c.request("POST", &cmd_path, body.as_bytes()) {
            Ok((200, resp)) if digest_matches(&resp, &oracle[variant][step], false) => {}
            Ok((s, resp)) => return fail(format!("pre-kill step {step}: {s} {resp}")),
            Err(e) => return fail(format!("pre-kill step {step}: {e}")),
        }
        match c.request("POST", &ckpt_path, b"") {
            Ok((200, _)) => {}
            Ok((s, resp)) => return fail(format!("checkpoint after step {step}: {s} {resp}")),
            Err(e) => return fail(format!("checkpoint after step {step}: {e}")),
        }
    }
    srv.kill();
    drop(srv);
    drop(client);

    // Restart over the same directory; resume from the last confirmed
    // step. With no commands confirmed there is nothing on disk and the
    // session is (correctly) gone — skip the resume in that case.
    if kill_after == 0 {
        return KillTrial {
            kill_after,
            violation: None,
        };
    }
    let gw2 = gateway(catalog, Some(dir.to_path_buf()));
    let mut srv2 =
        Server::start(Arc::clone(&gw2), "127.0.0.1:0", server_cfg(None)).expect("rebind server");
    let mut client = Some(ChaosClient::connect(srv2.addr()).expect("reconnect"));
    for (step, body) in bodies.iter().enumerate().skip(kill_after) {
        let result = request_with_retry(
            &mut client,
            srv2.addr(),
            None,
            "POST",
            &cmd_path,
            body.as_bytes(),
        );
        match result {
            Ok((200, resp, retried)) => {
                if !digest_matches(&resp, &oracle[variant][step], retried) {
                    return fail(format!("post-kill step {step} diverged: {resp}"));
                }
                if step == kill_after {
                    let restored = json::parse(&resp)
                        .ok()
                        .and_then(|d| d.path("provenance.restored").and_then(|r| r.as_bool()));
                    if restored != Some(true) {
                        return fail(format!(
                            "first post-kill response not flagged restored: {resp}"
                        ));
                    }
                }
            }
            Ok((s, resp, _)) => return fail(format!("post-kill step {step}: {s} {resp}")),
            Err(e) => return fail(format!("post-kill step {step}: {e}")),
        }
    }
    srv2.shutdown();
    std::fs::remove_dir_all(dir).ok();
    KillTrial {
        kill_after,
        violation: None,
    }
}

/// Drain phase: N resident sessions mid-script, a graceful drain must
/// checkpoint all of them (counters included), and a restart must
/// restore each bit-identically.
fn run_drain_phase(catalog: &Arc<Catalog>, oracle: &[Vec<StepOracle>], dir: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    if dir.exists() {
        std::fs::remove_dir_all(dir).expect("reset drain dir");
    }
    std::fs::create_dir_all(dir).expect("create drain dir");
    let gw = gateway(catalog, Some(dir.to_path_buf()));
    let mut srv =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", server_cfg(None)).expect("bind drain server");
    let n = 3usize;
    let split = 4usize; // commands before the drain; the rest resume after
    let mut ids = Vec::new();
    for (v, oracle_v) in oracle.iter().enumerate().take(n) {
        let mut client = Some(ChaosClient::connect(srv.addr()).expect("connect"));
        let (_, body, _) =
            request_with_retry(&mut client, srv.addr(), None, "POST", "/api/session", b"")
                .expect("create");
        let id = session_of(&body).expect("session id");
        for (step, body) in script(v).iter().take(split).enumerate() {
            let path = format!("/api/session/{id}/command");
            let (status, resp, retried) = request_with_retry(
                &mut client,
                srv.addr(),
                None,
                "POST",
                &path,
                body.as_bytes(),
            )
            .expect("pre-drain command");
            if status != 200 || !digest_matches(&resp, &oracle_v[step], retried) {
                violations.push(format!("drain session {v} step {step}: {status} {resp}"));
            }
        }
        ids.push(id);
    }
    let report = srv.drain();
    if report.checkpointed != n || report.checkpoint_failures != 0 {
        violations.push(format!(
            "drain checkpointed {} of {n} with {} failures",
            report.checkpointed, report.checkpoint_failures
        ));
    }
    let m = gw.metrics();
    if m.drains.load(Ordering::Relaxed) == 0
        || m.drain_checkpoints.load(Ordering::Relaxed) != n as u64
    {
        violations.push("drain counters not populated".into());
    }

    let gw2 = gateway(catalog, Some(dir.to_path_buf()));
    let mut srv2 =
        Server::start(Arc::clone(&gw2), "127.0.0.1:0", server_cfg(None)).expect("rebind server");
    for (v, id) in ids.iter().enumerate() {
        let mut client = Some(ChaosClient::connect(srv2.addr()).expect("reconnect"));
        for (step, body) in script(v).iter().enumerate().skip(split) {
            let path = format!("/api/session/{id}/command");
            let (status, resp, retried) = request_with_retry(
                &mut client,
                srv2.addr(),
                None,
                "POST",
                &path,
                body.as_bytes(),
            )
            .expect("post-drain command");
            if status != 200 || !digest_matches(&resp, &oracle[v][step], retried) {
                violations.push(format!(
                    "post-drain session {v} step {step} diverged: {status} {resp}"
                ));
            }
        }
    }
    srv2.shutdown();
    std::fs::remove_dir_all(dir).ok();
    violations
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[allow(clippy::too_many_arguments)]
fn write_event_log(
    path: &Path,
    baseline_ops: u64,
    stride: u64,
    trials: &[Trial],
    kills: &[KillTrial],
    drain_violations: &[String],
    total_timeouts: u64,
    total_net_errors: u64,
) {
    let mut out = String::new();
    let violations = trials.iter().filter(|t| t.violation.is_some()).count()
        + kills.iter().filter(|t| t.violation.is_some()).count()
        + drain_violations.len();
    out.push_str("{\n");
    out.push_str(&format!("  \"baseline_ops\": {baseline_ops},\n"));
    out.push_str(&format!("  \"stride\": {stride},\n"));
    out.push_str(&format!(
        "  \"fault_kinds\": {},\n",
        ALL_NET_FAULT_KINDS.len()
    ));
    out.push_str(&format!("  \"trials\": {},\n", trials.len()));
    out.push_str(&format!("  \"kill_trials\": {},\n", kills.len()));
    out.push_str(&format!("  \"violations\": {violations},\n"));
    out.push_str(&format!("  \"timeout_class_events\": {total_timeouts},\n"));
    out.push_str(&format!(
        "  \"net_error_class_events\": {total_net_errors},\n"
    ));
    out.push_str("  \"events\": [\n");
    for (i, t) in trials.iter().enumerate() {
        let sep = if i + 1 == trials.len() { "" } else { "," };
        let violation = match &t.violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"op\": {}, \"sessions\": {}, \"faults_fired\": {}, \
             \"timeouts\": {}, \"net_errors\": {}, \"violation\": {}}}{}\n",
            t.kind, t.at_op, t.sessions, t.faults_fired, t.timeouts, t.net_errors, violation, sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kill_matrix\": [\n");
    for (i, t) in kills.iter().enumerate() {
        let sep = if i + 1 == kills.len() { "" } else { "," };
        let violation = match &t.violation {
            Some(v) => format!("\"{}\"", json_escape(v)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"kill_after\": {}, \"violation\": {}}}{}\n",
            t.kill_after, violation, sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"drain_violations\": [{}]\n",
        drain_violations
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    std::fs::write(path, out).expect("write event log");
}

fn main() -> ExitCode {
    let mut stride_points = 8u64;
    let mut sessions = 3usize;
    let mut log_path = PathBuf::from("CHAOS_NET_events.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stride" => {
                stride_points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--stride needs a number")
            }
            "--sessions" => {
                sessions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sessions needs a number")
            }
            "--log" => log_path = PathBuf::from(args.next().expect("--log needs a path")),
            other => {
                eprintln!(
                    "usage: chaos_net [--stride N] [--sessions S] [--log <file>]; got {other}"
                );
                return ExitCode::from(2);
            }
        }
    }
    let t0 = std::time::Instant::now();
    let catalog = catalog();
    let oracle = oracle_digests(&catalog, 4);

    // Baseline over a transparent (empty) script: learn the op space and
    // prove the fault machinery itself is invisible when silent.
    let baseline_net = Arc::new(NetScript::new());
    let baseline = run_trial_baseline(&catalog, &oracle, &baseline_net, sessions);
    if let Some(v) = baseline {
        eprintln!("BASELINE VIOLATION: {v}");
        return ExitCode::FAILURE;
    }
    let total_ops = baseline_net.ops_seen();
    // Stride-sample the op axis to `stride_points` injection points per
    // kind; the full product is quadratic and this box has one core. The
    // stride is recorded in the event log — sampled, not silently capped.
    let stride = (total_ops / stride_points).max(1);
    println!(
        "baseline: {total_ops} net ops across {sessions} sessions; sampling every {stride} ops"
    );

    let mut trials = Vec::new();
    for kind in ALL_NET_FAULT_KINDS {
        for point in 0..stride_points {
            let at_op = point * stride;
            if at_op >= total_ops {
                break;
            }
            for n in [1usize, sessions.max(2)] {
                let t = run_trial(&catalog, &oracle, kind, at_op, n);
                if let Some(v) = &t.violation {
                    eprintln!("VIOLATION kind={kind} op={at_op} sessions={n}: {v}");
                }
                trials.push(t);
            }
        }
    }
    let total_timeouts: u64 = trials.iter().map(|t| t.timeouts).sum();
    let total_net_errors: u64 = trials.iter().map(|t| t.net_errors).sum();
    let fired: usize = trials.iter().map(|t| t.faults_fired).sum();
    println!(
        "fault matrix: {} trials, {fired} faults fired, {total_timeouts} timeout-class and \
         {total_net_errors} error-class events",
        trials.len()
    );
    // Satellite contract: the fault matrix must actually exercise the
    // timeout/error counters — a silent run means the injection or the
    // metrics are broken.
    let mut meta_violations = 0usize;
    if fired == 0 {
        eprintln!("VIOLATION: no network fault ever fired");
        meta_violations += 1;
    }
    for kind in ALL_NET_FAULT_KINDS {
        if !trials
            .iter()
            .any(|t| t.kind == kind.name() && t.faults_fired > 0)
        {
            eprintln!("VIOLATION: fault kind {kind} never fired in any trial");
            meta_violations += 1;
        }
    }
    if total_timeouts + total_net_errors == 0 {
        eprintln!("VIOLATION: fault matrix left every timeout/error counter at zero");
        meta_violations += 1;
    }

    let kill_dir = std::env::temp_dir().join(format!("qag-chaos-net-kill-{}", std::process::id()));
    let script_len = script(0).len();
    let kills: Vec<KillTrial> = (0..=script_len)
        .map(|k| {
            let t = run_kill_trial(&catalog, &oracle, &kill_dir, k);
            if let Some(v) = &t.violation {
                eprintln!("KILL VIOLATION kill_after={k}: {v}");
            }
            t
        })
        .collect();
    println!("kill matrix: {} trials", kills.len());

    let drain_dir =
        std::env::temp_dir().join(format!("qag-chaos-net-drain-{}", std::process::id()));
    let drain_violations = run_drain_phase(&catalog, &oracle, &drain_dir);
    for v in &drain_violations {
        eprintln!("DRAIN VIOLATION: {v}");
    }

    write_event_log(
        &log_path,
        total_ops,
        stride,
        &trials,
        &kills,
        &drain_violations,
        total_timeouts,
        total_net_errors,
    );
    let violations = trials.iter().filter(|t| t.violation.is_some()).count()
        + kills.iter().filter(|t| t.violation.is_some()).count()
        + drain_violations.len()
        + meta_violations;
    println!(
        "{} fault + {} kill trials + drain in {:?}: {violations} violations; log at {}",
        trials.len(),
        kills.len(),
        t0.elapsed(),
        log_path.display()
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The baseline pass: identical workload over an empty (transparent)
/// script on a real server; also counts the op space for sampling.
fn run_trial_baseline(
    catalog: &Arc<Catalog>,
    oracle: &[Vec<StepOracle>],
    net: &Arc<NetScript>,
    sessions: usize,
) -> Option<String> {
    let gw = gateway(catalog, None);
    let mut srv = Server::start(
        Arc::clone(&gw),
        "127.0.0.1:0",
        server_cfg(Some(Arc::clone(net))),
    )
    .expect("bind baseline server");
    let addr = srv.addr();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|v| scope.spawn(move || drive_session(addr, None, v, oracle)))
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some("baseline client panicked".into()),
            })
            .collect()
    });
    srv.shutdown();
    if net.faults_fired() != 0 {
        return Some("empty script fired faults during the baseline".into());
    }
    if errors.is_empty() {
        None
    } else {
        Some(errors.join("; "))
    }
}
