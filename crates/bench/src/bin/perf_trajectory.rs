//! The perf-trajectory gate: compare a fresh `BENCH_hotpath.json` against
//! the committed baseline and **fail** (exit 1) when any enforced metric
//! regresses by more than the allowed fraction.
//!
//! This replaces the old CI step that merely printed `diff -u … || true` —
//! a reviewer had to notice a regression by eye. The gate reads both files
//! with the in-repo JSON reader (no external deps), extracts the enforced
//! speedup bars, and prints a table; a fresh value below
//! `committed × (1 − 0.25)` fails the job. Metrics present only in the
//! fresh file (new sections) pass with a note; metrics that *disappeared*
//! fail — losing a bar silently is exactly what the gate exists to catch.
//!
//! ```text
//! perf_trajectory [COMMITTED_JSON] [FRESH_JSON]
//! ```
//!
//! Defaults: `<repo>/BENCH_hotpath.committed.json` and
//! `<repo>/BENCH_hotpath.json`, resolved from `CARGO_MANIFEST_DIR` so the
//! binary works from any working directory. A missing committed baseline
//! is a clear, immediate error (exit 2), not an empty diff.

use qagview_bench::json::{self, Json};
use qagview_bench::repo_root;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Maximum tolerated regression of any enforced metric (fraction of the
/// committed value).
const MAX_REGRESSION: f64 = 0.25;

/// One enforced metric: a dotted path within a document root.
struct Metric {
    name: String,
    committed: Option<f64>,
    fresh: Option<f64>,
}

/// Collect every enforced metric from one parsed baseline document.
/// Workload-indexed sections are keyed by their `m` so the comparison
/// survives reordering.
fn enforced(doc: &Json) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: Option<&Json>| {
        if let Some(value) = v.and_then(Json::as_f64) {
            out.push((name, value));
        }
    };
    push("query_exec.speedup".into(), doc.path("query_exec.speedup"));
    push(
        "query_exec.threshold_reeval.speedup".into(),
        doc.path("query_exec.threshold_reeval.speedup"),
    );
    push(
        "session_tick.warm_vs_cold".into(),
        doc.path("session_tick.warm_vs_cold"),
    );
    push(
        "store_warm_start.speedup".into(),
        doc.path("store_warm_start.speedup"),
    );
    push(
        "progressive_first_paint.speedup".into(),
        doc.path("progressive_first_paint.speedup"),
    );
    push(
        "serve_tick.latency_headroom".into(),
        doc.path("serve_tick.latency_headroom"),
    );
    push(
        "serve_tick.throughput_ticks_per_s".into(),
        doc.path("serve_tick.throughput_ticks_per_s"),
    );
    for wl in doc
        .path("plane_build.workloads")
        .map(Json::items)
        .unwrap_or(&[])
    {
        if let Some(m) = wl.get("m").and_then(Json::as_f64) {
            push(format!("plane_build[m={m}].speedup"), wl.get("speedup"));
        }
    }
    for p in doc.path("n_scaling.points").map(Json::items).unwrap_or(&[]) {
        if let Some(n) = p.get("n").and_then(Json::as_f64) {
            push(
                format!("n_scaling[n={n}].seq_mrows_per_s"),
                p.get("seq_mrows_per_s"),
            );
            // Core-scaling metric: `run` drops it when the committed and
            // fresh runs saw different thread counts.
            push(
                format!("n_scaling[n={n}].par_mrows_per_s"),
                p.get("par_mrows_per_s"),
            );
        }
    }
    for wl in doc.get("workloads").map(Json::items).unwrap_or(&[]) {
        if let Some(m) = wl.get("m").and_then(Json::as_f64) {
            push(
                format!("workloads[m={m}].candidate_build.indexed_speedup_vs_naive"),
                wl.path("candidate_build.indexed_speedup_vs_naive"),
            );
            push(
                format!("workloads[m={m}].greedy_marginals.speedup"),
                wl.path("greedy_marginals.speedup"),
            );
            push(
                format!("workloads[m={m}].delta_greedy.speedup"),
                wl.path("delta_greedy.speedup"),
            );
        }
    }
    out
}

fn read_doc(path: &Path, role: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read the {role} baseline at {}: {e}\n\
             (the perf job copies the committed BENCH_hotpath.json to \
             BENCH_hotpath.committed.json before rerunning the baseline)",
            path.display()
        )
    })?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(committed_path: &Path, fresh_path: &Path) -> Result<bool, String> {
    let committed = read_doc(committed_path, "committed")?;
    let fresh = read_doc(fresh_path, "fresh")?;

    let mut committed_metrics = enforced(&committed);
    let mut fresh_metrics = enforced(&fresh);

    // Core-scaling metrics (parallel per-row throughput) only mean
    // something when both runs had the same number of cores to scale
    // onto; a baseline committed from a 1-thread CI host must not gate a
    // 16-thread dev box (or vice versa).
    let threads_of = |doc: &Json| doc.get("threads").and_then(Json::as_f64);
    let (ct, ft) = (threads_of(&committed), threads_of(&fresh));
    if ct != ft {
        let is_core_scaling = |name: &str| name.ends_with(".par_mrows_per_s");
        committed_metrics.retain(|(n, _)| !is_core_scaling(n));
        fresh_metrics.retain(|(n, _)| !is_core_scaling(n));
        println!(
            "note: thread counts differ (committed {}, fresh {}); \
             core-scaling metrics (*.par_mrows_per_s) are not compared",
            ct.map_or("?".into(), |v| format!("{v:.0}")),
            ft.map_or("?".into(), |v| format!("{v:.0}")),
        );
    }
    let mut names: Vec<String> = committed_metrics
        .iter()
        .map(|(n, _)| n.clone())
        .chain(fresh_metrics.iter().map(|(n, _)| n.clone()))
        .collect();
    names.sort();
    names.dedup();

    let lookup = |set: &[(String, f64)], name: &str| -> Option<f64> {
        set.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let metrics: Vec<Metric> = names
        .into_iter()
        .map(|name| Metric {
            committed: lookup(&committed_metrics, &name),
            fresh: lookup(&fresh_metrics, &name),
            name,
        })
        .collect();

    let mut ok = true;
    println!(
        "{:<58} {:>10} {:>10} {:>8}  status",
        "metric", "committed", "fresh", "ratio"
    );
    for m in &metrics {
        let (status, line_ok) = match (m.committed, m.fresh) {
            (Some(c), Some(f)) => {
                let ratio = f / c;
                if f + 1e-12 >= c * (1.0 - MAX_REGRESSION) {
                    (format!("ok ({:+.0}%)", (ratio - 1.0) * 100.0), true)
                } else {
                    (format!("REGRESSED >{:.0}%", MAX_REGRESSION * 100.0), false)
                }
            }
            (None, Some(_)) => ("new metric".to_string(), true),
            (Some(_), None) => ("MISSING from fresh run".to_string(), false),
            (None, None) => unreachable!("name came from one of the sets"),
        };
        println!(
            "{:<58} {:>10} {:>10} {:>8}  {status}",
            m.name,
            m.committed.map_or("-".into(), |v| format!("{v:.2}")),
            m.fresh.map_or("-".into(), |v| format!("{v:.2}")),
            match (m.committed, m.fresh) {
                (Some(c), Some(f)) => format!("{:.2}", f / c),
                _ => "-".into(),
            },
        );
        ok &= line_ok;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let committed: PathBuf = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_hotpath.committed.json"));
    let fresh: PathBuf = args
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root().join("BENCH_hotpath.json"));
    eprintln!(
        "perf trajectory gate: committed {} vs fresh {} (max regression {:.0}%)",
        committed.display(),
        fresh.display(),
        MAX_REGRESSION * 100.0
    );
    match run(&committed, &fresh) {
        Ok(true) => {
            println!("trajectory gate: all enforced metrics within bounds");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("trajectory gate: enforced metric regressed (see table)");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("trajectory gate error: {message}");
            ExitCode::from(2)
        }
    }
}
