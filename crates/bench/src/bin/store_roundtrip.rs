//! CI persistence-roundtrip driver: one process builds and persists the
//! MovieLens plane store, a **separate** process reloads it and asserts
//! byte-identical summaries.
//!
//! ```text
//! store_roundtrip save   <dir>   # process 1: cold build + write-back
//! store_roundtrip verify <dir>   # process 2: warm start from the store
//! ```
//!
//! `save` drives the owned exploration engine with
//! [`ExplorerConfig::store_dir`] pointed at `<dir>`: the paper's Example
//! 1.1 session opens cold, the engine writes the `.qag` plane store back,
//! and a bit-exact digest of everything the user saw (summary, guidance
//! plot, exploration state — floats hashed by their bit patterns) lands in
//! `<dir>/summary.digest`.
//!
//! `verify` runs in a fresh process: the same session must now warm-start
//! from the store (asserted via cache provenance), its view must hash to
//! the digest recorded by process 1, and a third, store-less engine
//! rebuilding everything cold must agree bit for bit as well. Any mismatch
//! exits nonzero, failing the CI job.

use qagview::datagen::movielens::{self, MovieLensConfig};
use qagview::prelude::*;
use std::hash::Hasher as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Example 1.1's query over the generated RatingTable.
const SQL: &str = "SELECT hdec, agegrp, gender, occupation, AVG(rating) AS val FROM ratingtable \
                   GROUP BY hdec, agegrp, gender, occupation \
                   HAVING count(*) > 50 ORDER BY val DESC";
const RATINGS: usize = 50_000;
const DIGEST_FILE: &str = "summary.digest";

fn catalog() -> Catalog {
    let table = movielens::generate(&MovieLensConfig {
        ratings: RATINGS,
        ..Default::default()
    })
    .expect("movielens table");
    let mut catalog = Catalog::new();
    catalog.register("ratingtable", table);
    catalog
}

/// A bit-exact digest of a response's user-visible content: every float
/// contributes its raw bits, so two processes agree iff their views are
/// byte-identical.
fn digest(r: &ExploreResponse) -> String {
    let mut h = qagview::common::FxHasher::default();
    let put_f64 = |h: &mut qagview::common::FxHasher, v: f64| h.write_u64(v.to_bits());
    h.write(r.state.sql.as_bytes());
    h.write_usize(r.state.k);
    h.write_usize(r.state.l);
    h.write_usize(r.state.d);
    for c in &r.summary.clusters {
        h.write(c.label.as_bytes());
        h.write_usize(c.size);
        h.write_usize(c.top_l);
        put_f64(&mut h, c.sum);
        put_f64(&mut h, c.avg);
    }
    h.write_usize(r.summary.covered);
    h.write_usize(r.summary.total);
    put_f64(&mut h, r.summary.avg);
    for series in &r.plot.series {
        h.write_usize(series.d);
        for &v in &series.avg_by_k {
            put_f64(&mut h, v);
        }
    }
    format!("{:016x}", h.finish())
}

fn open_session(store_dir: Option<PathBuf>) -> (Arc<Explorer>, ExploreResponse) {
    let engine = Arc::new(Explorer::with_config(
        catalog(),
        ExplorerConfig {
            store_dir,
            ..Default::default()
        },
    ));
    let mut session = engine
        .open_session(SessionSpec::default())
        .expect("open session");
    session
        .apply(ExploreCommand::SetQuery(SQL.into()))
        .expect("open session");
    // One knob move so the digest covers a plane lookup beyond the default.
    let response = session.apply(ExploreCommand::SetK(6)).expect("SetK");
    (engine, response)
}

fn save(dir: &Path) -> ExitCode {
    std::fs::create_dir_all(dir).expect("create store dir");
    let t0 = std::time::Instant::now();
    let (engine, response) = open_session(Some(dir.to_path_buf()));
    let stats = engine.stats().store;
    assert_eq!(
        response.provenance.plane_store.as_ref(),
        None, // SetK after the cold SetQuery is a memory hit
        "warm knob move must not consult the store"
    );
    assert_eq!(stats.writes, 1, "exactly one .qag written");
    assert_eq!(stats.write_errors, 0, "write-back failed");
    let d = digest(&response);
    std::fs::write(dir.join(DIGEST_FILE), &d).expect("write digest");
    let qag: Vec<String> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".qag"))
        .collect();
    println!(
        "saved plane store for {} answers in {:?}: {} (digest {d})",
        response.summary.total,
        t0.elapsed(),
        qag.join(", ")
    );
    ExitCode::SUCCESS
}

fn verify(dir: &Path) -> ExitCode {
    let recorded = std::fs::read_to_string(dir.join(DIGEST_FILE))
        .expect("read digest written by the save process");

    // Process 2, arm 1: warm start from the persisted store.
    let t0 = std::time::Instant::now();
    let (engine, warm) = open_session(Some(dir.to_path_buf()));
    let stats = engine.stats().store;
    if stats.loads != 1 || stats.probe_misses != 0 {
        eprintln!(
            "FAIL: expected a pure store warm start, saw loads={} probe_misses={}",
            stats.loads, stats.probe_misses
        );
        return ExitCode::FAILURE;
    }
    let warm_digest = digest(&warm);
    println!(
        "warm start from store in {:?}: digest {warm_digest}",
        t0.elapsed()
    );
    if warm_digest != recorded {
        eprintln!("FAIL: warm view digest {warm_digest} != saved process digest {recorded}");
        return ExitCode::FAILURE;
    }

    // Arm 2: a store-less engine rebuilding cold must agree bit for bit.
    let (_, cold) = open_session(None);
    if !warm.same_view(&cold) || digest(&cold) != warm_digest {
        eprintln!("FAIL: store-served view diverges from a cold rebuild");
        return ExitCode::FAILURE;
    }
    println!(
        "byte-identical across processes and against a cold rebuild \
         ({} answers, k={}, digest {warm_digest})",
        warm.summary.total, warm.state.k
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, dir] if cmd == "save" => save(Path::new(dir)),
        [cmd, dir] if cmd == "verify" => verify(Path::new(dir)),
        _ => {
            eprintln!("usage: store_roundtrip <save|verify> <dir>");
            ExitCode::from(2)
        }
    }
}
