//! A minimal JSON reader for the perf-trajectory gate.
//!
//! `BENCH_hotpath.json` is produced by our own binaries, so this parser
//! only needs to read well-formed JSON — but it still rejects malformed
//! input with positioned errors instead of misreading it, because the gate
//! compares a *committed* file that humans occasionally touch. No external
//! dependencies (the build environment is offline); numbers parse as
//! `f64`, which is exact for everything the baseline emits.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (the gate looks keys up by
    /// path, never iterates for output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Navigate `self.key` for an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Navigate an array element.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The elements of an array, or an empty slice.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The number stored here, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Walk a dotted path of object keys, e.g. `"query_exec.speedup"`.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number '{text}': {e}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in our files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let doc = r#"{
          "bench": "hotpath_baseline",
          "threads": 1,
          "query_exec": { "speedup": 4.30, "threshold_reeval": { "speedup": 35.67 } },
          "workloads": [ { "m": 4, "delta_greedy": { "speedup": 57.22 } } ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.path("query_exec.speedup").unwrap().as_f64(), Some(4.30));
        assert_eq!(
            v.path("query_exec.threshold_reeval.speedup")
                .unwrap()
                .as_f64(),
            Some(35.67)
        );
        let wl = v.get("workloads").unwrap().at(0).unwrap();
        assert_eq!(
            wl.path("delta_greedy.speedup").unwrap().as_f64(),
            Some(57.22)
        );
        assert_eq!(wl.get("m").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn strings_decode_escapes() {
        let v = parse(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\"b\\c\ndA".into())));
    }

    #[test]
    fn numbers_including_negatives_and_exponents() {
        let v = parse(r#"[-1.5, 2e3, 0.25, -0.0]"#).unwrap();
        let nums: Vec<f64> = v.items().iter().filter_map(Json::as_f64).collect();
        assert_eq!(nums, vec![-1.5, 2000.0, 0.25, -0.0]);
    }

    #[test]
    fn literals_and_empties() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn malformed_input_is_rejected_with_position() {
        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "tru", "1.2.3", "{}x"] {
            let err = parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "offset for {bad:?}");
        }
    }

    #[test]
    fn path_misses_are_none_not_panics() {
        let v = parse(r#"{"a": {"b": 1}}"#).unwrap();
        assert!(v.path("a.b").is_some());
        assert!(v.path("a.c").is_none());
        assert!(v.path("a.b.c").is_none());
        assert!(v.at(0).is_none());
    }
}
