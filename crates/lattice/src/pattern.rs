//! Cluster patterns: the paper's clusters with don't-care `∗` values.
//!
//! A cluster over `m` attributes is an element of `∏ᵢ (Dᵢ ∪ {∗})` (§3). We
//! encode each attribute's active domain with dense `u32` codes (assigned by
//! [`crate::answers::AnswerSet`]) and reserve [`STAR`] for `∗`, so all
//! pattern algebra is branch-light integer work — this is where the §6.3
//! "hash values for fields" optimization pays off.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;

/// The don't-care marker inside a pattern slot.
pub const STAR: u32 = u32::MAX;

/// A cluster: one code (or [`STAR`]) per grouping attribute.
///
/// Patterns are ordered lexicographically by slot (with `∗` sorting last),
/// giving every algorithm a deterministic tie-break.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern(Box<[u32]>);

impl Pattern {
    /// Build a pattern from raw slots (codes or [`STAR`]).
    pub fn new(slots: impl Into<Box<[u32]>>) -> Self {
        Pattern(slots.into())
    }

    /// The all-`∗` pattern over `m` attributes — the paper's trivial
    /// feasible solution `(∗, ∗, …, ∗)`.
    pub fn all_star(m: usize) -> Self {
        Pattern(vec![STAR; m].into())
    }

    /// A concrete (singleton-cluster) pattern from tuple codes.
    pub fn from_tuple(codes: &[u32]) -> Self {
        debug_assert!(codes.iter().all(|&c| c != STAR), "tuple codes cannot be ∗");
        Pattern(codes.into())
    }

    /// Number of attributes `m`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Raw slots.
    #[inline]
    pub fn slots(&self) -> &[u32] {
        &self.0
    }

    /// The slot for attribute `i`.
    #[inline]
    pub fn slot(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// Whether attribute `i` is a don't-care.
    #[inline]
    pub fn is_star(&self, i: usize) -> bool {
        self.0[i] == STAR
    }

    /// Number of `∗` slots — the pattern's *level* in the semilattice
    /// (§4.2: "Level ℓ of the semilattice is the set of clusters with
    /// exactly ℓ ∗ values").
    pub fn level(&self) -> usize {
        self.0.iter().filter(|&&c| c == STAR).count()
    }

    /// Whether the pattern has no `∗` (i.e. it is a singleton cluster).
    pub fn is_concrete(&self) -> bool {
        self.0.iter().all(|&c| c != STAR)
    }

    /// Coverage test between clusters (§3): `self` covers `other` iff for
    /// every attribute, `self` is `∗` or agrees with `other`.
    ///
    /// Note coverage is a *partial order*: `covers(a, b) && covers(b, a)`
    /// implies `a == b`.
    pub fn covers(&self, other: &Pattern) -> bool {
        debug_assert_eq!(self.arity(), other.arity(), "pattern arity mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(&a, &b)| a == STAR || a == b)
    }

    /// Coverage test against a concrete tuple given as raw codes.
    #[inline]
    pub fn covers_tuple(&self, codes: &[u32]) -> bool {
        debug_assert_eq!(self.arity(), codes.len(), "pattern arity mismatch");
        self.0
            .iter()
            .zip(codes.iter())
            .all(|(&a, &b)| a == STAR || a == b)
    }

    /// The paper's cluster distance (Def. 3.1): the number of attributes
    /// where at least one side is `∗` or the two sides disagree.
    ///
    /// Restricted to concrete patterns this is the Hamming distance between
    /// tuples; in general it is the *maximum* element distance across the
    /// two clusters' contents.
    pub fn distance(&self, other: &Pattern) -> usize {
        debug_assert_eq!(self.arity(), other.arity(), "pattern arity mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .filter(|&(&a, &b)| a == STAR || b == STAR || a != b)
            .count()
    }

    /// Least common ancestor (§5.1): slot-wise, keep agreeing concrete
    /// values and generalize everything else to `∗`.
    ///
    /// `lca(a, b)` covers both `a` and `b`, and any pattern covering both
    /// also covers `lca(a, b)` — see the `lca_is_least` property test.
    pub fn lca(&self, other: &Pattern) -> Pattern {
        debug_assert_eq!(self.arity(), other.arity(), "pattern arity mismatch");
        Pattern(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(&a, &b)| if a == b && a != STAR { a } else { STAR })
                .collect(),
        )
    }

    /// Enumerate every *generalization* (ancestor) of a concrete tuple,
    /// including the tuple itself and the all-`∗` pattern: one pattern per
    /// subset of starred positions (2^m total).
    ///
    /// This enumeration is the engine of the §6.3 candidate-generation
    /// optimization. The callback style avoids 2^m allocations at the call
    /// site; `scratch` is reused across masks.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() > 24` — the eager enumeration is meant for the
    /// paper's regime of `m ≤ 10` grouping attributes.
    pub fn for_each_generalization(codes: &[u32], mut f: impl FnMut(&[u32])) {
        let m = codes.len();
        assert!(
            m <= 24,
            "eager generalization enumeration requires m <= 24, got {m}"
        );
        let mut scratch = vec![0u32; m];
        for mask in 0u32..(1u32 << m) {
            for (i, slot) in scratch.iter_mut().enumerate() {
                *slot = if mask >> i & 1 == 1 { STAR } else { codes[i] };
            }
            f(&scratch);
        }
    }

    /// Deterministic total order used for tie-breaking: level first (fewer
    /// `∗` first), then lexicographic slots.
    pub fn cmp_for_ties(&self, other: &Pattern) -> Ordering {
        self.level()
            .cmp(&other.level())
            .then_with(|| self.0.cmp(&other.0))
    }

    /// Render with a resolver from `(attribute index, code)` to text.
    pub fn display_with<'a, F>(&'a self, resolve: F) -> PatternDisplay<'a, F>
    where
        F: Fn(usize, u32) -> String,
    {
        PatternDisplay {
            pattern: self,
            resolve,
        }
    }
}

/// Patterns borrow as their raw slot slice, and the derived `Hash`/`Eq`
/// agree with the slice's (a `Box<[u32]>` hashes exactly like `[u32]`), so
/// hash maps keyed by `Pattern` can be probed with a `&[u32]` scratch buffer
/// without allocating. This is the inner loop of candidate-index
/// construction: every tuple probes its `2^m` generalizations.
impl Borrow<[u32]> for Pattern {
    #[inline]
    fn borrow(&self) -> &[u32] {
        &self.0
    }
}

/// Helper returned by [`Pattern::display_with`].
pub struct PatternDisplay<'a, F> {
    pattern: &'a Pattern,
    resolve: F,
}

impl<F> fmt::Display for PatternDisplay<'_, F>
where
    F: Fn(usize, u32) -> String,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &c) in self.pattern.slots().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if c == STAR {
                write!(f, "*")?;
            } else {
                write!(f, "{}", (self.resolve)(i, c))?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(slots: &[u32]) -> Pattern {
        Pattern::new(slots.to_vec())
    }

    #[test]
    fn coverage_basics() {
        // Figure 3a: C1 = (*, *, c1, d1) covers (a1, b2, c1, d1).
        let c1 = p(&[STAR, STAR, 0, 0]);
        let t = p(&[0, 1, 0, 0]);
        assert!(c1.covers(&t));
        assert!(!t.covers(&c1));
        assert!(c1.covers(&c1));
    }

    #[test]
    fn distance_matches_paper_example() {
        // §3: d((*, *, c1, d1), (a2, b1, *, d1)) = 3 (stars in A1, A2, A3).
        let c1 = p(&[STAR, STAR, 0, 0]);
        let c2 = p(&[1, 0, STAR, 0]);
        assert_eq!(c1.distance(&c2), 3);
    }

    #[test]
    fn distance_on_concrete_patterns_is_hamming() {
        let a = p(&[1, 2, 3, 4]);
        let b = p(&[1, 9, 3, 8]);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn self_distance_counts_own_stars() {
        // Def. 3.1 applied to (C, C): every ∗ slot contributes.
        let c = p(&[STAR, 5, STAR]);
        assert_eq!(c.distance(&c), 2);
    }

    #[test]
    fn lca_generalizes_disagreements() {
        // §5.1: LCA((a1,*,c1,*), (a1,b2,c2,*)) = (a1,*,*,*).
        let a = p(&[0, STAR, 0, STAR]);
        let b = p(&[0, 1, 1, STAR]);
        assert_eq!(a.lca(&b), p(&[0, STAR, STAR, STAR]));
    }

    #[test]
    fn lca_covers_both_inputs() {
        let a = p(&[1, 2, STAR]);
        let b = p(&[1, STAR, 3]);
        let l = a.lca(&b);
        assert!(l.covers(&a));
        assert!(l.covers(&b));
    }

    #[test]
    fn level_and_concreteness() {
        assert_eq!(Pattern::all_star(4).level(), 4);
        assert_eq!(p(&[1, STAR, 2]).level(), 1);
        assert!(p(&[1, 2]).is_concrete());
        assert!(!p(&[1, STAR]).is_concrete());
    }

    #[test]
    fn generalization_enumeration_counts() {
        let mut n = 0usize;
        let mut star_histogram = [0usize; 4];
        Pattern::for_each_generalization(&[7, 8, 9], |slots| {
            n += 1;
            star_histogram[slots.iter().filter(|&&c| c == STAR).count()] += 1;
        });
        assert_eq!(n, 8);
        assert_eq!(star_histogram, [1, 3, 3, 1]); // binomial(3, k)
    }

    #[test]
    fn generalizations_all_cover_the_tuple() {
        let codes = [3u32, 1, 4, 1];
        Pattern::for_each_generalization(&codes, |slots| {
            assert!(Pattern::new(slots.to_vec()).covers_tuple(&codes));
        });
    }

    #[test]
    fn tie_break_prefers_fewer_stars() {
        let specific = p(&[1, 2]);
        let general = p(&[1, STAR]);
        assert_eq!(specific.cmp_for_ties(&general), Ordering::Less);
    }

    #[test]
    fn display_resolves_codes() {
        let c = p(&[0, STAR]);
        let text = c.display_with(|i, code| format!("v{i}{code}")).to_string();
        assert_eq!(text, "(v00, *)");
    }
}
