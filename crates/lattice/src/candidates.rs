//! Candidate-cluster generation and cluster→tuple mapping (paper §6.3).
//!
//! Rather than materializing the full cluster space `∏ᵢ (Dᵢ ∪ {∗})`, the
//! paper generates exactly the clusters that can ever appear in a solution:
//! the ancestors of the top-`L` tuples (each top-`L` tuple has `2^m`
//! generalizations). This set is closed under the `Merge` operation — the
//! LCA of two ancestors of top-`L` tuples covers a top-`L` tuple, hence is
//! itself such an ancestor — so one eager pass suffices for a whole run, and
//! for *all* `(k, D)` combinations during precomputation (§6.2).
//!
//! The coverage mapping is built in the "inverted" direction the paper
//! describes: every tuple of `S` probes its own `2^m` generalizations into
//! the candidate map, instead of every candidate scanning all of `S`. The
//! naive scan is retained as [`CandidateIndex::build_naive`] for the
//! Fig. 8(a) ablation (paper: 100×–1000× slower).

use crate::answers::{AnswerSet, TupleId};
use crate::pattern::Pattern;
use qagview_common::{FixedBitSet, FxHashMap, QagError, Result};

/// Dense identifier of a candidate cluster inside a [`CandidateIndex`].
pub type CandId = u32;

/// A candidate covering at least `n / DENSE_COVERAGE_DIVISOR` tuples also
/// carries a bitset coverage representation, so marginal evaluation can use
/// the fused word-level kernels instead of walking the id list. The
/// threshold sits where one coverage word holds an expected hit (1/64
/// density): from there on a branch-free word walk with zero-word skip
/// beats per-id probes, and — just as important for the merge-frontier
/// descents — the Delta-Judgment refresh gets an O(1) bitset probe per
/// diff tuple instead of a list merge.
pub const DENSE_COVERAGE_DIVISOR: usize = 64;

/// A candidate cluster with its precomputed coverage over all of `S`.
#[derive(Debug, Clone)]
pub struct CandidateInfo {
    /// The cluster pattern.
    pub pattern: Pattern,
    /// Ids of covered tuples, ascending (== descending-value rank order).
    pub cov: Vec<TupleId>,
    /// Sum of `val` over the covered tuples.
    pub sum: f64,
    /// Bitset view of `cov`, present only for dense candidates (see
    /// [`DENSE_COVERAGE_DIVISOR`]). Always consistent with `cov`.
    pub cov_bits: Option<FixedBitSet>,
}

impl CandidateInfo {
    /// Number of covered tuples.
    pub fn count(&self) -> usize {
        self.cov.len()
    }

    /// Average value of covered tuples (`avg(C)` in §4.1).
    pub fn avg(&self) -> f64 {
        if self.cov.is_empty() {
            0.0
        } else {
            self.sum / self.cov.len() as f64
        }
    }
}

/// The candidate-cluster index for one `(S, L)` pair.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    m: usize,
    l: usize,
    n: usize,
    map: FxHashMap<Pattern, CandId>,
    infos: Vec<CandidateInfo>,
}

/// Below this relation size the sharded parallel build is all overhead.
const PARALLEL_BUILD_MIN_TUPLES: usize = 8 * 1024;

impl CandidateIndex {
    /// Build with the §6.3 optimization (default path): inverted mapping,
    /// sharded across threads for large relations.
    ///
    /// # Errors
    ///
    /// * [`QagError::InvalidParameter`] if `l` is zero or exceeds `n`, or if
    ///   `m` is too large for eager enumeration.
    pub fn build(answers: &AnswerSet, l: usize) -> Result<Self> {
        let threads = available_threads();
        if answers.len() >= PARALLEL_BUILD_MIN_TUPLES && threads > 1 {
            Self::build_parallel(answers, l, threads)
        } else {
            Self::build_sequential(answers, l)
        }
    }

    /// Build with the §6.3 optimization on a single thread.
    ///
    /// Each tuple probes its own `2^m` generalizations into the candidate
    /// map (the "inverted" direction); probes use the tuple's scratch slot
    /// buffer directly, with no per-probe allocation.
    pub fn build_sequential(answers: &AnswerSet, l: usize) -> Result<Self> {
        let mut index = Self::generate_candidates(answers, l)?;
        // Disjoint field borrows: probe `map` while mutating `infos`.
        let map = &index.map;
        let infos = &mut index.infos;
        for (t, codes, v) in answers.iter() {
            Pattern::for_each_generalization(codes, |slots| {
                if let Some(&id) = map.get(slots) {
                    let info = &mut infos[id as usize];
                    info.cov.push(t);
                    info.sum += v;
                }
            });
        }
        index.densify();
        Ok(index)
    }

    /// Build with the §6.3 optimization, sharding the tuple scan across
    /// `threads` worker threads.
    ///
    /// Each worker owns a contiguous tuple range and collects per-candidate
    /// coverage shards; shards are concatenated in range order (so coverage
    /// lists come out ascending, exactly as in the sequential build) and
    /// sums are re-accumulated per candidate in ascending-tuple order.
    /// Results are byte-identical to [`CandidateIndex::build_sequential`] —
    /// including float sums, because the addition order is preserved.
    pub fn build_parallel(answers: &AnswerSet, l: usize, threads: usize) -> Result<Self> {
        let n = answers.len();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            return Self::build_sequential(answers, l);
        }
        let mut index = Self::generate_candidates(answers, l)?;
        let ncand = index.infos.len();
        let chunk = n.div_ceil(threads);
        let map = &index.map;
        let shards: Vec<Vec<Vec<TupleId>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|ti| {
                    let lo = ti * chunk;
                    let hi = ((ti + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let mut cov: Vec<Vec<TupleId>> = vec![Vec::new(); ncand];
                        for t in lo..hi {
                            let t = t as TupleId;
                            Pattern::for_each_generalization(answers.tuple(t), |slots| {
                                if let Some(&id) = map.get(slots) {
                                    cov[id as usize].push(t);
                                }
                            });
                        }
                        cov
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate shard thread panicked"))
                .collect()
        });
        for (c, info) in index.infos.iter_mut().enumerate() {
            let total: usize = shards.iter().map(|s| s[c].len()).sum();
            info.cov.reserve_exact(total);
            for shard in &shards {
                info.cov.extend_from_slice(&shard[c]);
            }
            // Ascending-tuple accumulation, same order as the sequential
            // build's interleaved pushes.
            info.sum = 0.0;
            for &t in &info.cov {
                info.sum += answers.val(t);
            }
        }
        index.densify();
        Ok(index)
    }

    /// Build with the naive per-candidate scan (Fig. 8(a) ablation only).
    ///
    /// Produces byte-identical results to [`CandidateIndex::build`].
    pub fn build_naive(answers: &AnswerSet, l: usize) -> Result<Self> {
        let mut index = Self::generate_candidates(answers, l)?;
        for info in &mut index.infos {
            for (t, codes, v) in answers.iter() {
                if info.pattern.covers_tuple(codes) {
                    info.cov.push(t);
                    info.sum += v;
                }
            }
        }
        index.densify();
        Ok(index)
    }

    /// Attach bitset coverage to candidates dense enough to profit from the
    /// word-level kernels.
    fn densify(&mut self) {
        let n = self.n;
        for info in &mut self.infos {
            if info.cov.len() * DENSE_COVERAGE_DIVISOR >= n && !info.cov.is_empty() {
                info.cov_bits = Some(FixedBitSet::from_ids(
                    n,
                    info.cov.iter().map(|&t| t as usize),
                ));
            }
        }
    }

    fn generate_candidates(answers: &AnswerSet, l: usize) -> Result<Self> {
        let m = answers.arity();
        if l == 0 || l > answers.len() {
            return Err(QagError::param(format!(
                "coverage parameter L={l} must be in 1..={}",
                answers.len()
            )));
        }
        if m > 20 {
            return Err(QagError::param(format!(
                "eager candidate generation supports at most 20 grouping attributes, got {m}"
            )));
        }
        let mut map: FxHashMap<Pattern, CandId> = FxHashMap::default();
        let mut infos: Vec<CandidateInfo> = Vec::new();
        for t in 0..l as u32 {
            Pattern::for_each_generalization(answers.tuple(t), |slots| {
                // Probe with the scratch slice; allocate only on first sight.
                if !map.contains_key(slots) {
                    let p = Pattern::new(slots.to_vec());
                    let id = infos.len() as CandId;
                    map.insert(p.clone(), id);
                    infos.push(CandidateInfo {
                        pattern: p,
                        cov: Vec::new(),
                        sum: 0.0,
                        cov_bits: None,
                    });
                }
            });
        }
        Ok(CandidateIndex {
            m,
            l,
            n: answers.len(),
            map,
            infos,
        })
    }

    /// Number of tuples in the answer relation this index was built over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of grouping attributes.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// The `L` this index was built for.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of candidate clusters.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the index is empty (only possible for an empty `S`).
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Id of a pattern, if it is a candidate.
    pub fn id_of(&self, p: &Pattern) -> Option<CandId> {
        self.map.get(p).copied()
    }

    /// Id of a pattern, or an internal error (the candidate set is closed
    /// under LCA of ancestors of top-`L` tuples, so algorithm-internal
    /// lookups must never miss).
    pub fn require(&self, p: &Pattern) -> Result<CandId> {
        self.id_of(p).ok_or_else(|| {
            QagError::internal(format!("pattern {:?} missing from candidate index", p))
        })
    }

    /// Id of the pattern with these raw slots, probing the candidate map
    /// allocation-free (patterns `Borrow<[u32]>`, see [`Pattern`]). This is
    /// the merge-frontier engine's probe: LCA slots are computed into a
    /// reusable scratch buffer and looked up without building a `Pattern`.
    pub fn id_of_slots(&self, slots: &[u32]) -> Option<CandId> {
        self.map.get(slots).copied()
    }

    /// Like [`CandidateIndex::require`], but for raw slots (allocation-free).
    pub fn require_slots(&self, slots: &[u32]) -> Result<CandId> {
        self.id_of_slots(slots).ok_or_else(|| {
            QagError::internal(format!("pattern {slots:?} missing from candidate index"))
        })
    }

    /// Candidate info by id.
    #[inline]
    pub fn info(&self, id: CandId) -> &CandidateInfo {
        &self.infos[id as usize]
    }

    /// Iterate over `(CandId, &CandidateInfo)`.
    pub fn iter(&self) -> impl Iterator<Item = (CandId, &CandidateInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (i as CandId, info))
    }
}

/// Worker-thread count for the sharded build (number of available cores).
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::AnswerSetBuilder;
    use crate::pattern::STAR;

    fn sample() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into(), "c".into()]);
        b.push(&["x", "p", "1"], 5.0).unwrap();
        b.push(&["x", "q", "1"], 4.0).unwrap();
        b.push(&["y", "p", "2"], 3.0).unwrap();
        b.push(&["y", "q", "2"], 2.0).unwrap();
        b.push(&["x", "p", "2"], 1.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn candidate_count_for_single_top_tuple() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 1).unwrap();
        // One top tuple over m=3 attributes: 2^3 = 8 ancestors.
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.l(), 1);
        assert_eq!(idx.arity(), 3);
    }

    #[test]
    fn coverage_lists_cover_all_of_s_not_just_top_l() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 2).unwrap();
        // (x, *, *) is an ancestor of both top tuples and covers rank 4 too.
        let x = s.code_of(0, "x").unwrap();
        let p = Pattern::new(vec![x, STAR, STAR]);
        let id = idx.id_of(&p).expect("candidate present");
        let info = idx.info(id);
        assert_eq!(info.cov, vec![0, 1, 4]);
        assert!((info.sum - 10.0).abs() < 1e-12);
        assert!((info.avg() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_star_candidate_covers_everything() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 3).unwrap();
        let id = idx.id_of(&Pattern::all_star(3)).unwrap();
        assert_eq!(idx.info(id).count(), s.len());
    }

    #[test]
    fn naive_build_matches_indexed_build() {
        let s = sample();
        let fast = CandidateIndex::build(&s, 4).unwrap();
        let slow = CandidateIndex::build_naive(&s, 4).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (_, info) in fast.iter() {
            let sid = slow.id_of(&info.pattern).expect("same candidate set");
            let sinfo = slow.info(sid);
            assert_eq!(
                info.cov, sinfo.cov,
                "coverage differs for {:?}",
                info.pattern
            );
            assert!((info.sum - sinfo.sum).abs() < 1e-9);
        }
    }

    #[test]
    fn closure_under_lca() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 3).unwrap();
        let pats: Vec<Pattern> = idx.iter().map(|(_, i)| i.pattern.clone()).collect();
        for a in &pats {
            for b in &pats {
                let l = a.lca(b);
                // LCA of two candidates covering top-L tuples is a candidate
                // iff it covers a top-L tuple; ancestors of candidates that
                // themselves cover a top-L tuple always do.
                if (0..3u32).any(|t| l.covers_tuple(s.tuple(t))) {
                    assert!(idx.id_of(&l).is_some(), "LCA {l:?} missing");
                }
            }
        }
    }

    #[test]
    fn coverage_matches_full_scan() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 5).unwrap();
        for (_, info) in idx.iter() {
            let (ids, sum) = s.scan_coverage(&info.pattern);
            assert_eq!(info.cov, ids);
            assert!((info.sum - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn l_bounds_validated() {
        let s = sample();
        assert!(CandidateIndex::build(&s, 0).is_err());
        assert!(CandidateIndex::build(&s, 6).is_err());
        assert!(CandidateIndex::build(&s, 5).is_ok());
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        let s = sample();
        for l in 1..=5 {
            let seq = CandidateIndex::build_sequential(&s, l).unwrap();
            for threads in [2, 3, 8] {
                let par = CandidateIndex::build_parallel(&s, l, threads).unwrap();
                assert_eq!(par.len(), seq.len());
                for (id, info) in par.iter() {
                    let sinfo = seq.info(id);
                    assert_eq!(info.pattern, sinfo.pattern);
                    assert_eq!(info.cov, sinfo.cov);
                    assert_eq!(
                        info.sum.to_bits(),
                        sinfo.sum.to_bits(),
                        "sums must be byte-identical"
                    );
                    assert_eq!(info.cov_bits, sinfo.cov_bits);
                }
            }
        }
    }

    #[test]
    fn dense_candidates_carry_consistent_bitsets() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 5).unwrap();
        let mut saw_dense = false;
        for (_, info) in idx.iter() {
            if let Some(bits) = &info.cov_bits {
                saw_dense = true;
                assert_eq!(bits.len(), s.len());
                assert_eq!(bits.count_ones(), info.cov.len());
                let ids: Vec<u32> = bits.iter_ones().map(|i| i as u32).collect();
                assert_eq!(ids, info.cov);
            } else {
                // Sparse candidates must genuinely be below the threshold.
                assert!(info.cov.len() * DENSE_COVERAGE_DIVISOR < s.len() || info.cov.is_empty());
            }
        }
        assert!(saw_dense, "the all-star candidate is always dense");
    }

    #[test]
    fn require_reports_missing_pattern() {
        let s = sample();
        let idx = CandidateIndex::build(&s, 1).unwrap();
        // (y, *, *) is not an ancestor of the single top tuple (x, p, 1).
        let y = s.code_of(0, "y").unwrap();
        let missing = Pattern::new(vec![y, STAR, STAR]);
        assert!(idx.require(&missing).is_err());
    }
}
