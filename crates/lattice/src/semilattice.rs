//! Set-level helpers over the semilattice of clusters (paper §4.2).
//!
//! The coverage relation of [`Pattern`]s induces a join-semilattice: the
//! join of two clusters is their [`Pattern::lca`]. The feasibility conditions
//! of Def. 4.1 are set-level predicates over this structure — incomparability
//! (antichain) and minimum pairwise distance — implemented here, together
//! with test-only oracles for the monotonicity property (Prop. 4.2) that the
//! merging algorithms rely on.

use crate::pattern::Pattern;

/// Whether no pattern in `set` covers another (Def. 4.1 condition 4).
///
/// Quadratic; the solution sets it is applied to have at most `k` (tens of)
/// clusters.
pub fn is_antichain(set: &[Pattern]) -> bool {
    for (i, a) in set.iter().enumerate() {
        for b in &set[i + 1..] {
            if a.covers(b) || b.covers(a) {
                return false;
            }
        }
    }
    true
}

/// Minimum pairwise distance `λ` over a set of clusters (Prop. 4.2's
/// quantity). Returns `None` for sets with fewer than two clusters, for
/// which every distance constraint is vacuously satisfied.
pub fn min_pairwise_distance(set: &[Pattern]) -> Option<usize> {
    let mut min = None;
    for (i, a) in set.iter().enumerate() {
        for b in &set[i + 1..] {
            let d = a.distance(b);
            min = Some(min.map_or(d, |m: usize| m.min(d)));
        }
    }
    min
}

/// Whether every pairwise distance in `set` is at least `d` (Def. 4.1
/// condition 3). Short-circuits, unlike computing the full minimum.
pub fn satisfies_distance(set: &[Pattern], d: usize) -> bool {
    if d == 0 {
        return true;
    }
    for (i, a) in set.iter().enumerate() {
        for b in &set[i + 1..] {
            if a.distance(b) < d {
                return false;
            }
        }
    }
    true
}

/// The immediate parents of a pattern in the transitive reduction of the
/// semilattice (§4.2): replace each concrete slot, one at a time, with `∗`.
pub fn parents(p: &Pattern) -> Vec<Pattern> {
    let mut out = Vec::new();
    for i in 0..p.arity() {
        if !p.is_star(i) {
            let mut slots = p.slots().to_vec();
            slots[i] = crate::pattern::STAR;
            out.push(Pattern::new(slots));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::STAR;
    use proptest::prelude::*;

    fn p(slots: &[u32]) -> Pattern {
        Pattern::new(slots.to_vec())
    }

    #[test]
    fn antichain_detects_coverage() {
        let a = p(&[1, STAR]);
        let b = p(&[1, 2]);
        assert!(!is_antichain(&[a.clone(), b.clone()]));
        let c = p(&[2, STAR]);
        assert!(is_antichain(&[a, c]));
        assert!(is_antichain(&[]));
        assert!(is_antichain(&[b]));
    }

    #[test]
    fn min_distance_of_small_sets() {
        assert_eq!(min_pairwise_distance(&[]), None);
        assert_eq!(min_pairwise_distance(&[p(&[1, 2])]), None);
        let set = [p(&[1, 2]), p(&[1, 3]), p(&[4, 5])];
        assert_eq!(min_pairwise_distance(&set), Some(1));
        assert!(satisfies_distance(&set, 1));
        assert!(!satisfies_distance(&set, 2));
        assert!(satisfies_distance(&set, 0));
    }

    #[test]
    fn figure_3b_example() {
        // §4.2: {(a1,b2), (*,b1)} satisfies D=2; replacing (a1,b2) by its
        // ancestor (a1,*) keeps D=2. (Codes: a1=0, a2=1, b1=0, b2=1.)
        let s1 = [p(&[0, 1]), p(&[STAR, 0])];
        assert!(satisfies_distance(&s1, 2));
        let s2 = [p(&[0, STAR]), p(&[STAR, 0])];
        assert!(satisfies_distance(&s2, 2));
    }

    #[test]
    fn parents_are_one_level_up() {
        let base = p(&[1, 2, STAR]);
        let ps = parents(&base);
        assert_eq!(ps.len(), 2);
        for parent in &ps {
            assert_eq!(parent.level(), base.level() + 1);
            assert!(parent.covers(&base));
        }
        assert!(parents(&Pattern::all_star(3)).is_empty());
    }

    /// Strategy: a random pattern over `m` attributes with domain size `d`.
    fn arb_pattern(m: usize, d: u32) -> impl Strategy<Value = Pattern> {
        prop::collection::vec(prop_oneof![3 => (0..d).prop_map(|c| c), 1 => Just(STAR)], m)
            .prop_map(Pattern::new)
    }

    proptest! {
        /// Distance is symmetric.
        #[test]
        fn distance_symmetric(a in arb_pattern(5, 4), b in arb_pattern(5, 4)) {
            prop_assert_eq!(a.distance(&b), b.distance(&a));
        }

        /// Distance is bounded by the arity.
        #[test]
        fn distance_bounded(a in arb_pattern(5, 4), b in arb_pattern(5, 4)) {
            prop_assert!(a.distance(&b) <= 5);
        }

        /// Triangle inequality on *concrete* patterns (where the distance is
        /// the Hamming metric).
        #[test]
        fn concrete_triangle_inequality(
            a in prop::collection::vec(0u32..4, 5),
            b in prop::collection::vec(0u32..4, 5),
            c in prop::collection::vec(0u32..4, 5),
        ) {
            let (a, b, c) = (Pattern::new(a), Pattern::new(b), Pattern::new(c));
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c));
        }

        /// Prop. 4.2 (monotonicity): replacing a cluster with an ancestor
        /// never decreases the minimum pairwise distance.
        #[test]
        fn monotonicity_under_ancestor_replacement(
            mut set in prop::collection::vec(arb_pattern(5, 3), 2..6),
            star_mask in prop::collection::vec(any::<bool>(), 5),
        ) {
            let before = min_pairwise_distance(&set).unwrap();
            // Build an ancestor of set[0] by starring a random subset of slots.
            let mut slots = set[0].slots().to_vec();
            for (i, &s) in star_mask.iter().enumerate() {
                if s {
                    slots[i] = STAR;
                }
            }
            set[0] = Pattern::new(slots);
            let after = min_pairwise_distance(&set).unwrap();
            prop_assert!(after >= before, "min distance decreased: {before} -> {after}");
        }

        /// LCA is the least common ancestor: it covers both inputs, and any
        /// other common ancestor covers it.
        #[test]
        fn lca_is_least(
            a in arb_pattern(5, 3),
            b in arb_pattern(5, 3),
            other in arb_pattern(5, 3),
        ) {
            let l = a.lca(&b);
            prop_assert!(l.covers(&a) && l.covers(&b));
            if other.covers(&a) && other.covers(&b) {
                prop_assert!(other.covers(&l));
            }
        }

        /// Coverage is transitive.
        #[test]
        fn coverage_transitive(
            a in arb_pattern(4, 3),
            b in arb_pattern(4, 3),
            c in arb_pattern(4, 3),
        ) {
            if a.covers(&b) && b.covers(&c) {
                prop_assert!(a.covers(&c));
            }
        }

        /// Coverage is antisymmetric.
        #[test]
        fn coverage_antisymmetric(a in arb_pattern(4, 3), b in arb_pattern(4, 3)) {
            if a.covers(&b) && b.covers(&a) {
                prop_assert_eq!(a, b);
            }
        }

        /// If d(C, C') >= D then the clusters share at most m - D concrete
        /// attribute values (§3, last paragraph).
        #[test]
        fn distance_limits_shared_values(a in arb_pattern(6, 3), b in arb_pattern(6, 3)) {
            let d = a.distance(&b);
            let shared = (0..6)
                .filter(|&i| !a.is_star(i) && a.slot(i) == b.slot(i))
                .count();
            prop_assert!(shared <= 6 - d);
        }
    }
}
