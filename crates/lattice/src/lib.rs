//! Cluster patterns and the coverage semilattice (paper §3–§4.2, §6.3).
//!
//! The summarization framework describes groups of aggregate answers with
//! *clusters*: patterns over the `m` grouping attributes where hidden values
//! are replaced by a don't-care `∗`. This crate implements:
//!
//! * [`answers`] — the answer relation `S` of an aggregate query, re-encoded
//!   with per-attribute dense codes and sorted by score (the input to every
//!   algorithm in the paper).
//! * [`pattern`] — the pattern/cluster type with the paper's coverage
//!   relation (Def. in §3), distance function (Def. 3.1) and least-common-
//!   ancestor (`Merge`'s LCA, §5.1).
//! * [`semilattice`] — set-level helpers over the semilattice of clusters:
//!   antichain checks, minimum pairwise distance, and the monotonicity
//!   property of Prop. 4.2.
//! * [`candidates`] — the §6.3 "cluster generation and mapping to tuples"
//!   optimization: an index of every candidate cluster (ancestors of top-`L`
//!   tuples) with precomputed coverage lists over all of `S`, plus the naive
//!   scan variant kept for the Fig. 8(a) ablation.
//! * [`wire`] — on-disk sections for patterns and cluster coverage (the
//!   lattice half of the persistent precompute store), including the lazy
//!   [`wire::ClusterDirectory`] a loaded store serves solutions from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod answers;
pub mod candidates;
pub mod pattern;
pub mod semilattice;
pub mod wire;

pub use answers::{AnswerSet, AnswerSetBuilder, AnswersHandle, TupleId};
pub use candidates::{CandId, CandidateIndex, CandidateInfo};
pub use pattern::{Pattern, STAR};
pub use semilattice::{is_antichain, min_pairwise_distance};
pub use wire::{ClusterDirectory, StoredCluster};
