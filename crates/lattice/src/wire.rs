//! On-disk sections for lattice-level objects: patterns and cluster
//! coverage.
//!
//! The persistent precompute store serializes, per candidate cluster that
//! any `(k, D)` plane references, its pattern codes, its exact coverage
//! sum (as raw `f64` bits), and its coverage over `S`. Coverage is the
//! bulky part, so two representations are chosen per cluster by size:
//!
//! * **id runs** — ascending `u32` tuple ids, for sparse clusters;
//! * **bitset words** — raw `u64` words over `n` tuples, for clusters
//!   covering more than `n / 32` tuples (where the words are smaller than
//!   the id run).
//!
//! Either way the bytes stay inside the store's single read buffer
//! ([`std::sync::Arc`]`<Vec<u8>>`) and are only *materialized* into id
//! vectors when a solution actually touches the cluster — a stabbing query
//! at `(k, d)` touches ≤ `k` clusters, so a process can open a store and
//! serve its first summary without ever decoding the other clusters'
//! coverage. Materialization re-validates bounds and ordering (typed
//! errors, never panics), and yields ids in ascending order — exactly the
//! order of [`CandidateInfo::cov`](crate::CandidateInfo::cov) — so solutions served from a store are
//! byte-identical (float accumulation order included) to solutions served
//! from a live [`CandidateIndex`](crate::CandidateIndex).

use crate::answers::TupleId;
use crate::candidates::CandId;
use crate::pattern::{Pattern, STAR};
use qagview_common::wire::{self as qwire, Reader, Writer};
use qagview_common::{FixedBitSet, FxHashMap, QagError, Result, StoreErrorKind};
use std::sync::Arc;

/// Append a pattern's slots (codes or [`STAR`]) to a section.
pub fn put_pattern(w: &mut Writer, p: &Pattern) {
    w.put_u32_slice(p.slots());
}

/// Decode a pattern of arity `m`, validating every concrete slot against
/// the per-attribute domain sizes.
pub fn read_pattern(r: &mut Reader<'_>, domain_sizes: &[usize]) -> Result<Pattern> {
    let slots = r.read_u32_vec(domain_sizes.len())?;
    for (i, &c) in slots.iter().enumerate() {
        if c != STAR && c as usize >= domain_sizes[i] {
            return Err(QagError::store(
                StoreErrorKind::Corrupt,
                format!(
                    "pattern slot {i} holds code {c}, attribute domain has {} values",
                    domain_sizes[i]
                ),
            ));
        }
    }
    Ok(Pattern::new(slots))
}

/// Representation tag of a serialized coverage section.
const COV_IDS: u8 = 0;
const COV_BITS: u8 = 1;

/// A cluster's coverage kept as an undecoded range of the shared store
/// buffer, materialized on demand.
#[derive(Debug, Clone)]
enum CovSection {
    /// Ascending `u32` little-endian tuple ids.
    IdsLe {
        buf: Arc<Vec<u8>>,
        offset: usize,
        count: usize,
    },
    /// `u64` little-endian bitset words over `n` tuples.
    BitsLe {
        buf: Arc<Vec<u8>>,
        offset: usize,
        count: usize,
    },
}

/// One cluster as loaded from a store: pattern, exact coverage sum, and a
/// lazily materialized coverage section.
#[derive(Debug, Clone)]
pub struct StoredCluster {
    pattern: Pattern,
    sum: f64,
    n: usize,
    cov: CovSection,
}

impl StoredCluster {
    /// The cluster pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Sum of `val` over the covered tuples, bit-exact as stored.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of covered tuples (known without materializing).
    pub fn count(&self) -> usize {
        match &self.cov {
            CovSection::IdsLe { count, .. } | CovSection::BitsLe { count, .. } => *count,
        }
    }

    /// Decode the coverage into ascending tuple ids — the same order as
    /// [`CandidateInfo::cov`](crate::CandidateInfo::cov), so downstream float
    /// accumulation is byte-identical to the live-index path.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::Store`] ([`StoreErrorKind::Corrupt`]) if ids
    /// are out of range or not strictly ascending, or if a bitset section
    /// disagrees with its recorded count. A checksum-valid store never
    /// trips these; they exist so even a hand-corrupted file cannot panic
    /// the serving path.
    pub fn materialize(&self) -> Result<Vec<TupleId>> {
        match &self.cov {
            CovSection::IdsLe { buf, offset, count } => {
                let bytes = &buf[*offset..*offset + count * 4];
                let mut ids = Vec::with_capacity(*count);
                let mut prev: Option<u32> = None;
                for c in bytes.chunks_exact(4) {
                    let id = u32::from_le_bytes(c.try_into().expect("4 bytes"));
                    if id as usize >= self.n {
                        return Err(QagError::store(
                            StoreErrorKind::Corrupt,
                            format!("coverage id {id} out of range for n={}", self.n),
                        ));
                    }
                    if prev.is_some_and(|p| p >= id) {
                        return Err(QagError::store(
                            StoreErrorKind::Corrupt,
                            "coverage ids not strictly ascending",
                        ));
                    }
                    prev = Some(id);
                    ids.push(id);
                }
                Ok(ids)
            }
            CovSection::BitsLe { buf, offset, count } => {
                let nwords = self.n.div_ceil(64);
                let bytes = &buf[*offset..*offset + nwords * 8];
                // The shared word-codec validates word count and the
                // padding-bits-zero invariant with a typed error.
                let bits = FixedBitSet::from_words(self.n, qwire::decode_u64_le(bytes))?;
                if bits.count_ones() != *count {
                    return Err(QagError::store(
                        StoreErrorKind::Corrupt,
                        format!(
                            "coverage bitset holds {} ids, section header says {count}",
                            bits.count_ones()
                        ),
                    ));
                }
                Ok(bits.iter_ones().map(|i| i as TupleId).collect())
            }
        }
    }
}

/// Append one cluster's coverage section: representation tag, count, then
/// either the ascending id run or the bitset words — whichever is smaller.
///
/// `ids` must be ascending tuple ids `< n` (the invariant of
/// [`CandidateInfo::cov`](crate::CandidateInfo::cov)).
///
/// # Panics
///
/// Panics if any id is `>= n` (via [`FixedBitSet::from_ids`]'s bounds
/// assert) — an out-of-range id written as a word would corrupt the
/// padding invariant the decoder validates.
pub fn put_coverage(w: &mut Writer, n: usize, ids: &[TupleId]) {
    let id_bytes = ids.len() * 4;
    let word_bytes = n.div_ceil(64) * 8;
    if id_bytes <= word_bytes {
        w.put_u8(COV_IDS);
        w.put_u32(ids.len() as u32);
        w.put_u32_slice(ids);
    } else {
        w.put_u8(COV_BITS);
        w.put_u32(ids.len() as u32);
        let bits = FixedBitSet::from_ids(n, ids.iter().map(|&id| id as usize));
        w.put_u64_slice(bits.as_words());
    }
}

/// Decode one cluster record written by [`put_cluster`], borrowing the
/// coverage bytes from `buf` without copying. `r` must be a cursor over
/// `buf` itself (positions are reused as offsets into the shared buffer).
pub fn read_cluster(
    r: &mut Reader<'_>,
    buf: &Arc<Vec<u8>>,
    n: usize,
    domain_sizes: &[usize],
) -> Result<(CandId, StoredCluster)> {
    let id = r.read_u32()?;
    let pattern = read_pattern(r, domain_sizes)?;
    let sum = r.read_f64_bits()?;
    let tag = r.read_u8()?;
    let count = r.read_count(n, "coverage")?;
    let cov = match tag {
        COV_IDS => {
            let offset = r.position();
            r.skip(count * 4)?;
            CovSection::IdsLe {
                buf: Arc::clone(buf),
                offset,
                count,
            }
        }
        COV_BITS => {
            let offset = r.position();
            r.skip(n.div_ceil(64) * 8)?;
            CovSection::BitsLe {
                buf: Arc::clone(buf),
                offset,
                count,
            }
        }
        other => {
            return Err(QagError::store(
                StoreErrorKind::Corrupt,
                format!("unknown coverage representation tag {other}"),
            ))
        }
    };
    Ok((
        id,
        StoredCluster {
            pattern,
            sum,
            n,
            cov,
        },
    ))
}

/// Append one full cluster record: id, pattern, sum bits, coverage.
pub fn put_cluster(
    w: &mut Writer,
    id: CandId,
    pattern: &Pattern,
    sum: f64,
    n: usize,
    ids: &[TupleId],
) {
    w.put_u32(id);
    put_pattern(w, pattern);
    w.put_f64_bits(sum);
    put_coverage(w, n, ids);
}

/// The cluster directory of a loaded store: every candidate id any plane
/// references, with pattern/sum decoded and coverage kept lazy.
#[derive(Debug)]
pub struct ClusterDirectory {
    m: usize,
    n: usize,
    map: FxHashMap<CandId, StoredCluster>,
}

impl ClusterDirectory {
    /// An empty directory over `m` attributes and `n` tuples.
    pub fn new(m: usize, n: usize) -> Self {
        ClusterDirectory {
            m,
            n,
            map: FxHashMap::default(),
        }
    }

    /// Arity of the stored patterns.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// Tuple count of the answer relation the coverage refers to.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored clusters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Register a decoded cluster. Duplicate ids are a format violation.
    pub fn insert(&mut self, id: CandId, cluster: StoredCluster) -> Result<()> {
        if cluster.pattern.arity() != self.m {
            return Err(QagError::store(
                StoreErrorKind::Corrupt,
                format!(
                    "cluster {id} has arity {}, directory expects {}",
                    cluster.pattern.arity(),
                    self.m
                ),
            ));
        }
        if self.map.insert(id, cluster).is_some() {
            return Err(QagError::store(
                StoreErrorKind::Corrupt,
                format!("cluster id {id} appears twice in the store"),
            ));
        }
        Ok(())
    }

    /// Look up a cluster by candidate id.
    pub fn get(&self, id: CandId) -> Option<&StoredCluster> {
        self.map.get(&id)
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: CandId) -> bool {
        self.map.contains_key(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::AnswerSetBuilder;
    use crate::candidates::CandidateIndex;

    fn sample_index() -> (crate::AnswerSet, CandidateIndex) {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        for (x, y, v) in [
            ("p", "1", 8.0),
            ("p", "2", 7.5),
            ("q", "1", 6.0),
            ("q", "2", 2.0),
            ("r", "1", 1.0),
        ] {
            b.push(&[x, y], v).unwrap();
        }
        let s = b.finish().unwrap();
        let idx = CandidateIndex::build(&s, s.len()).unwrap();
        (s, idx)
    }

    #[test]
    fn pattern_round_trips_and_validates_codes() {
        let p = Pattern::new(vec![2, STAR, 0]);
        let mut w = Writer::new();
        put_pattern(&mut w, &p);
        let bytes = w.into_bytes();
        let back = read_pattern(&mut Reader::new(&bytes), &[3, 5, 1]).unwrap();
        assert_eq!(back, p);
        // Code 2 is out of range for a 2-value domain.
        let err = read_pattern(&mut Reader::new(&bytes), &[2, 5, 1]).unwrap_err();
        assert_eq!(err.store_kind(), Some(StoreErrorKind::Corrupt));
    }

    #[test]
    fn clusters_round_trip_both_representations() {
        let (s, idx) = sample_index();
        let domain_sizes: Vec<usize> = (0..s.arity()).map(|i| s.domain_size(i)).collect();
        let mut w = Writer::new();
        let all: Vec<_> = idx.iter().collect();
        for (id, info) in &all {
            put_cluster(&mut w, *id, &info.pattern, info.sum, s.len(), &info.cov);
        }
        let buf = Arc::new(w.into_bytes());
        let mut r = Reader::new(&buf);
        for (id, info) in &all {
            let (rid, sc) = read_cluster(&mut r, &buf, s.len(), &domain_sizes).unwrap();
            assert_eq!(rid, *id);
            assert_eq!(sc.pattern(), &info.pattern);
            assert_eq!(sc.sum().to_bits(), info.sum.to_bits());
            assert_eq!(sc.count(), info.cov.len());
            assert_eq!(sc.materialize().unwrap(), info.cov);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn bitset_representation_kicks_in_for_dense_coverage() {
        // n large relative to coverage forces ids; tiny n forces words.
        let ids: Vec<TupleId> = (0..50).collect();
        let mut w_ids = Writer::new();
        put_coverage(&mut w_ids, 1 << 20, &ids);
        let mut w_bits = Writer::new();
        put_coverage(&mut w_bits, 64, &ids);
        assert_eq!(w_ids.as_bytes()[0], COV_IDS);
        assert_eq!(w_bits.as_bytes()[0], COV_BITS);
        assert!(w_bits.len() < w_ids.len());
    }

    #[test]
    fn materialize_rejects_out_of_range_and_unsorted_ids() {
        let make = |ids: &[u32], n: usize| {
            let mut w = Writer::new();
            w.put_u32(0); // id
            w.put_u32_slice(&[STAR]); // pattern, m = 1
            w.put_f64_bits(0.0);
            w.put_u8(COV_IDS);
            w.put_u32(ids.len() as u32);
            w.put_u32_slice(ids);
            let buf = Arc::new(w.into_bytes());
            let mut r = Reader::new(&buf);
            read_cluster(&mut r, &buf, n, &[1]).unwrap().1
        };
        let oob = make(&[0, 9], 5);
        assert_eq!(
            oob.materialize().unwrap_err().store_kind(),
            Some(StoreErrorKind::Corrupt)
        );
        let unsorted = make(&[3, 1], 5);
        assert_eq!(
            unsorted.materialize().unwrap_err().store_kind(),
            Some(StoreErrorKind::Corrupt)
        );
    }

    #[test]
    fn directory_rejects_duplicates_and_wrong_arity() {
        let (s, idx) = sample_index();
        let domain_sizes: Vec<usize> = (0..s.arity()).map(|i| s.domain_size(i)).collect();
        let (id, info) = idx.iter().next().unwrap();
        let mut w = Writer::new();
        put_cluster(&mut w, id, &info.pattern, info.sum, s.len(), &info.cov);
        let buf = Arc::new(w.into_bytes());
        let decode = || {
            read_cluster(&mut Reader::new(&buf), &buf, s.len(), &domain_sizes)
                .unwrap()
                .1
        };
        let mut dir = ClusterDirectory::new(s.arity(), s.len());
        dir.insert(id, decode()).unwrap();
        assert_eq!(
            dir.insert(id, decode()).unwrap_err().store_kind(),
            Some(StoreErrorKind::Corrupt)
        );
        let mut wrong = ClusterDirectory::new(s.arity() + 1, s.len());
        assert_eq!(
            wrong.insert(id, decode()).unwrap_err().store_kind(),
            Some(StoreErrorKind::Corrupt)
        );
        assert!(dir.contains(id));
        assert_eq!(dir.len(), 1);
    }
}
