//! The answer relation `S` of an aggregate query (paper §3).
//!
//! Every algorithm in the paper consumes the same object: the ordered output
//! of `SELECT A₁..Aₘ, aggr AS val … ORDER BY val DESC`. [`AnswerSet`]
//! re-encodes each grouping attribute's active domain with dense `u32`
//! codes (so patterns are pure integer vectors) and stores the tuples sorted
//! by descending value with a deterministic tie-break.

use crate::pattern::Pattern;
use qagview_common::{FxHashMap, FxHashSet, FxHasher, QagError, Result};
use std::hash::Hasher as _;
use std::ops::Deref;
use std::sync::Arc;

/// Dense identifier of an original answer tuple; equals its 0-based rank
/// (tuple 0 is the highest-valued answer).
pub type TupleId = u32;

/// The answer relation: `n` scored tuples over `m` categorical attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerSet {
    attr_names: Vec<String>,
    /// Per-attribute active domain, display text per dense code.
    domains: Vec<Vec<String>>,
    /// Row-major codes: `codes[t * m + i]` is attribute `i` of tuple `t`.
    codes: Vec<u32>,
    /// `vals[t]` is the score of tuple `t`; non-increasing in `t`.
    vals: Vec<f64>,
    m: usize,
}

impl AnswerSet {
    /// Number of grouping attributes `m`.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// Number of answer tuples `n`.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Attribute names, in order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Size of attribute `i`'s active domain.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domains[i].len()
    }

    /// Display text for code `c` of attribute `i`.
    pub fn code_text(&self, i: usize, c: u32) -> &str {
        &self.domains[i][c as usize]
    }

    /// Look up the code of a display value in attribute `i`'s domain.
    pub fn code_of(&self, i: usize, text: &str) -> Option<u32> {
        self.domains[i]
            .iter()
            .position(|v| v == text)
            .map(|p| p as u32)
    }

    /// The codes of tuple `t`.
    #[inline]
    pub fn tuple(&self, t: TupleId) -> &[u32] {
        let s = t as usize * self.m;
        &self.codes[s..s + self.m]
    }

    /// The score of tuple `t`.
    #[inline]
    pub fn val(&self, t: TupleId) -> f64 {
        self.vals[t as usize]
    }

    /// All scores, rank-ordered.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Iterator over `(TupleId, codes, val)` in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[u32], f64)> {
        (0..self.len() as u32).map(move |t| (t, self.tuple(t), self.val(t)))
    }

    /// The singleton-cluster pattern of tuple `t`.
    pub fn singleton(&self, t: TupleId) -> Pattern {
        Pattern::from_tuple(self.tuple(t))
    }

    /// Average score of all `n` tuples — the paper's trivial "Lower Bound"
    /// baseline (the all-`∗` cluster covers everything).
    pub fn mean_val(&self) -> f64 {
        if self.vals.is_empty() {
            return 0.0;
        }
        self.vals.iter().sum::<f64>() / self.vals.len() as f64
    }

    /// Render a pattern against this answer set's domains.
    pub fn pattern_to_string(&self, p: &Pattern) -> String {
        p.display_with(|i, c| self.domains[i][c as usize].clone())
            .to_string()
    }

    /// Sum of `val` and count over the tuples covered by `p` (full scan).
    ///
    /// This is the slow path used by tests and the naive candidate builder;
    /// the algorithms use [`crate::CandidateIndex`] coverage lists instead.
    pub fn scan_coverage(&self, p: &Pattern) -> (Vec<TupleId>, f64) {
        let mut ids = Vec::new();
        let mut sum = 0.0;
        for (t, codes, v) in self.iter() {
            if p.covers_tuple(codes) {
                ids.push(t);
                sum += v;
            }
        }
        (ids, sum)
    }

    /// Assemble an answer set from pre-encoded rows: per-attribute display
    /// domains plus `(codes, val)` tuples. This is the allocation-lean path
    /// used by the query layer to convert a cached group phase straight
    /// into an answer relation without re-interning display strings; it
    /// applies the exact same ordering, uniqueness, and NaN rules as
    /// [`AnswerSetBuilder::finish`], so both construction paths are
    /// byte-identical for the same logical input.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::SchemaMismatch`] on an arity mismatch, a code
    /// outside its domain, a NaN score, or a duplicate group-by tuple.
    pub fn from_rows(
        attr_names: Vec<String>,
        domains: Vec<Vec<String>>,
        mut rows: Vec<(Vec<u32>, f64)>,
    ) -> Result<AnswerSet> {
        let m = attr_names.len();
        if domains.len() != m {
            return Err(QagError::SchemaMismatch(format!(
                "{} domains for {m} attributes",
                domains.len()
            )));
        }
        for (codes, val) in &rows {
            if codes.len() != m {
                return Err(QagError::SchemaMismatch(format!(
                    "answer tuple arity {} != {m}",
                    codes.len()
                )));
            }
            for (i, &c) in codes.iter().enumerate() {
                if c as usize >= domains[i].len() {
                    return Err(QagError::SchemaMismatch(format!(
                        "code {c} outside attribute {i}'s domain of {}",
                        domains[i].len()
                    )));
                }
            }
            if val.is_nan() {
                return Err(QagError::SchemaMismatch(
                    "NaN aggregate score cannot be ranked".to_string(),
                ));
            }
        }
        // Uniqueness must be checked against *all* rows, not just
        // value-sort neighbors: two rows with equal codes but different
        // scores sort apart, so an adjacency check would miss them.
        {
            let mut seen: FxHashSet<&[u32]> = FxHashSet::default();
            for (codes, _) in &rows {
                if !seen.insert(codes.as_slice()) {
                    return Err(QagError::SchemaMismatch(format!(
                        "duplicate group-by tuple {codes:?}: the answer relation must come from \
                         GROUP BY"
                    )));
                }
            }
        }
        rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("NaN scores rejected above")
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut codes = Vec::with_capacity(rows.len() * m);
        let mut vals = Vec::with_capacity(rows.len());
        for (c, v) in rows {
            codes.extend_from_slice(&c);
            vals.push(v);
        }
        Ok(AnswerSet {
            attr_names,
            domains,
            codes,
            vals,
            m,
        })
    }

    /// A deterministic content fingerprint: two answer sets with equal
    /// fingerprints are (collisions aside) byte-identical — same attribute
    /// names, domains, codes, and score bits — so every summarization
    /// artifact derived from them (candidate index, solutions, guidance
    /// plot) is identical too. The interactive engine keys its summarizer
    /// and precompute caches by this value, which is what lets a `HAVING`
    /// tick that happens not to change the answer relation reuse a whole
    /// precomputed parameter plane.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.m);
        h.write_usize(self.vals.len());
        for name in &self.attr_names {
            h.write_usize(name.len());
            h.write(name.as_bytes());
        }
        for domain in &self.domains {
            h.write_usize(domain.len());
            for text in domain {
                h.write_usize(text.len());
                h.write(text.as_bytes());
            }
        }
        for &c in &self.codes {
            h.write_u32(c);
        }
        for &v in &self.vals {
            h.write_u64(v.to_bits());
        }
        h.finish()
    }
}

/// Borrowed-or-shared access to an [`AnswerSet`].
///
/// The summarization stack historically borrowed the answer relation
/// (`Summarizer<'a>`, `Precomputed<'a>`), which ties every derived cache to
/// the borrow's lifetime. The owned exploration engine instead shares the
/// relation behind an [`Arc`]. This handle unifies both: APIs accept
/// `impl Into<AnswersHandle<'a>>`, so `&AnswerSet` keeps working verbatim
/// while `Arc<AnswerSet>` produces a `'static`, thread-shareable value.
#[derive(Debug, Clone)]
pub enum AnswersHandle<'a> {
    /// Borrowed for `'a` — the classic lifetime-bound path.
    Borrowed(&'a AnswerSet),
    /// Shared ownership — the handle itself can be `'static`.
    Shared(Arc<AnswerSet>),
}

impl Deref for AnswersHandle<'_> {
    type Target = AnswerSet;

    fn deref(&self) -> &AnswerSet {
        match self {
            AnswersHandle::Borrowed(a) => a,
            AnswersHandle::Shared(a) => a,
        }
    }
}

impl AsRef<AnswerSet> for AnswersHandle<'_> {
    fn as_ref(&self) -> &AnswerSet {
        self
    }
}

impl<'a> From<&'a AnswerSet> for AnswersHandle<'a> {
    fn from(a: &'a AnswerSet) -> Self {
        AnswersHandle::Borrowed(a)
    }
}

impl From<Arc<AnswerSet>> for AnswersHandle<'_> {
    fn from(a: Arc<AnswerSet>) -> Self {
        AnswersHandle::Shared(a)
    }
}

/// Builder that accepts display-valued rows and produces a rank-sorted,
/// dense-coded [`AnswerSet`].
#[derive(Debug)]
pub struct AnswerSetBuilder {
    attr_names: Vec<String>,
    domains: Vec<Vec<String>>,
    domain_maps: Vec<FxHashMap<String, u32>>,
    rows: Vec<(Vec<u32>, f64)>,
}

impl AnswerSetBuilder {
    /// Start building an answer set over the named attributes.
    pub fn new(attr_names: Vec<String>) -> Self {
        let m = attr_names.len();
        AnswerSetBuilder {
            attr_names,
            domains: vec![Vec::new(); m],
            domain_maps: vec![FxHashMap::default(); m],
            rows: Vec::new(),
        }
    }

    /// Append one answer tuple given as display strings plus its score.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::SchemaMismatch`] on an arity mismatch.
    pub fn push(&mut self, attrs: &[&str], val: f64) -> Result<()> {
        if attrs.len() != self.attr_names.len() {
            return Err(QagError::SchemaMismatch(format!(
                "answer tuple arity {} != {}",
                attrs.len(),
                self.attr_names.len()
            )));
        }
        let mut codes = Vec::with_capacity(attrs.len());
        for (i, &a) in attrs.iter().enumerate() {
            let code = match self.domain_maps[i].get(a) {
                Some(&c) => c,
                None => {
                    let c = self.domains[i].len() as u32;
                    self.domains[i].push(a.to_string());
                    self.domain_maps[i].insert(a.to_string(), c);
                    c
                }
            };
            codes.push(code);
        }
        self.rows.push((codes, val));
        Ok(())
    }

    /// Finish: sort by value descending (ties broken by codes ascending so
    /// runs are deterministic) and validate group-by uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::SchemaMismatch`] if two tuples share identical
    /// attribute values — impossible for a well-formed `GROUP BY` output —
    /// or if any score is NaN (unrankable).
    pub fn finish(self) -> Result<AnswerSet> {
        AnswerSet::from_rows(self.attr_names, self.domains, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::STAR;

    fn movie_sample() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec![
            "hdec".into(),
            "agegrp".into(),
            "gender".into(),
            "occupation".into(),
        ]);
        // A slice of Figure 1a.
        b.push(&["1975", "20s", "M", "Student"], 4.24).unwrap();
        b.push(&["1980", "20s", "M", "Programmer"], 4.13).unwrap();
        b.push(&["1980", "10s", "M", "Student"], 3.96).unwrap();
        b.push(&["1980", "20s", "M", "Student"], 3.91).unwrap();
        b.push(&["1995", "20s", "F", "Healthcare"], 1.98).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn tuples_sorted_by_value_desc() {
        let s = movie_sample();
        assert_eq!(s.len(), 5);
        assert_eq!(s.arity(), 4);
        let vals: Vec<f64> = s.vals().to_vec();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(vals, sorted);
        assert_eq!(s.val(0), 4.24);
    }

    #[test]
    fn codes_round_trip_to_text() {
        let s = movie_sample();
        let t0 = s.tuple(0);
        assert_eq!(s.code_text(0, t0[0]), "1975");
        assert_eq!(s.code_text(2, t0[2]), "M");
        assert_eq!(s.code_of(3, "Programmer"), Some(s.tuple(1)[3]));
        assert_eq!(s.code_of(3, "Astronaut"), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["zz"], 1.0).unwrap();
        b.push(&["aa"], 1.0).unwrap();
        let s = b.finish().unwrap();
        // "zz" was interned first (code 0) so it sorts before "aa" (code 1)
        // under the code-ascending tie-break.
        assert_eq!(s.code_text(0, s.tuple(0)[0]), "zz");
    }

    #[test]
    fn duplicate_groups_rejected() {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "y"], 1.0).unwrap();
        b.push(&["x", "y"], 2.0).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        assert!(b.push(&["only-one"], 1.0).is_err());
    }

    #[test]
    fn scan_coverage_and_mean() {
        let s = movie_sample();
        // (1980, *, M, *) covers ranks 1..=3 (values 4.13, 3.96, 3.91).
        let hdec_1980 = s.code_of(0, "1980").unwrap();
        let gender_m = s.code_of(2, "M").unwrap();
        let p = Pattern::new(vec![hdec_1980, STAR, gender_m, STAR]);
        let (ids, sum) = s.scan_coverage(&p);
        assert_eq!(ids, vec![1, 2, 3]);
        assert!((sum - (4.13 + 3.96 + 3.91)).abs() < 1e-9);
        assert!((s.mean_val() - (4.24 + 4.13 + 3.96 + 3.91 + 1.98) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_rendering_uses_domain_text() {
        let s = movie_sample();
        let p = Pattern::new(vec![
            s.code_of(0, "1980").unwrap(),
            STAR,
            s.code_of(2, "M").unwrap(),
            STAR,
        ]);
        assert_eq!(s.pattern_to_string(&p), "(1980, *, M, *)");
    }

    #[test]
    fn singleton_covers_only_itself_among_distinct_tuples() {
        let s = movie_sample();
        let p = s.singleton(2);
        let (ids, _) = s.scan_coverage(&p);
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn empty_answer_set() {
        let s = AnswerSetBuilder::new(vec!["a".into()]).finish().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.mean_val(), 0.0);
    }

    #[test]
    fn from_rows_matches_builder_byte_for_byte() {
        let built = movie_sample();
        let rebuilt = AnswerSet::from_rows(
            built.attr_names.clone(),
            built.domains.clone(),
            built
                .iter()
                .map(|(_, codes, v)| (codes.to_vec(), v))
                .collect(),
        )
        .unwrap();
        assert_eq!(built, rebuilt);
        assert_eq!(built.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn from_rows_validates_input() {
        let names = vec!["a".into()];
        let domains = vec![vec!["x".into()]];
        // Arity mismatch.
        assert!(
            AnswerSet::from_rows(names.clone(), domains.clone(), vec![(vec![0, 0], 1.0)]).is_err()
        );
        // Code outside the domain.
        assert!(
            AnswerSet::from_rows(names.clone(), domains.clone(), vec![(vec![7], 1.0)]).is_err()
        );
        // NaN score.
        assert!(
            AnswerSet::from_rows(names.clone(), domains.clone(), vec![(vec![0], f64::NAN)])
                .is_err()
        );
        // Duplicate tuple.
        assert!(
            AnswerSet::from_rows(names, domains, vec![(vec![0], 1.0), (vec![0], 2.0)]).is_err()
        );
    }

    #[test]
    fn duplicate_tuples_detected_even_when_not_value_adjacent() {
        // Regression: the rows sort by value, so equal-code rows separated
        // by a third row are not neighbors — uniqueness must still fail.
        let err = AnswerSet::from_rows(
            vec!["a".into()],
            vec![vec!["x".into(), "y".into()]],
            vec![(vec![0], 3.0), (vec![1], 2.0), (vec![0], 1.0)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Same through the builder.
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], 3.0).unwrap();
        b.push(&["y"], 2.0).unwrap();
        b.push(&["x"], 1.0).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn nan_scores_error_instead_of_panicking() {
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], f64::NAN).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn fingerprint_separates_content_but_not_derivation() {
        let s = movie_sample();
        assert_eq!(s.fingerprint(), s.clone().fingerprint());
        // A changed score changes the fingerprint.
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], 1.0).unwrap();
        let one = b.finish().unwrap();
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], 2.0).unwrap();
        let two = b.finish().unwrap();
        assert_ne!(one.fingerprint(), two.fingerprint());
        // -0.0 and +0.0 differ at the byte level, so they must differ here.
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], 0.0).unwrap();
        let pos = b.finish().unwrap();
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["x"], -0.0).unwrap();
        let neg = b.finish().unwrap();
        assert_ne!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn handle_derefs_from_both_ownership_modes() {
        let s = movie_sample();
        let borrowed: AnswersHandle<'_> = (&s).into();
        assert_eq!(borrowed.len(), 5);
        let shared: AnswersHandle<'static> = Arc::new(s.clone()).into();
        assert_eq!(shared.len(), 5);
        assert_eq!(borrowed.fingerprint(), shared.fingerprint());
    }
}
