//! The answer relation `S` of an aggregate query (paper §3).
//!
//! Every algorithm in the paper consumes the same object: the ordered output
//! of `SELECT A₁..Aₘ, aggr AS val … ORDER BY val DESC`. [`AnswerSet`]
//! re-encodes each grouping attribute's active domain with dense `u32`
//! codes (so patterns are pure integer vectors) and stores the tuples sorted
//! by descending value with a deterministic tie-break.

use crate::pattern::Pattern;
use qagview_common::{FxHashMap, QagError, Result};

/// Dense identifier of an original answer tuple; equals its 0-based rank
/// (tuple 0 is the highest-valued answer).
pub type TupleId = u32;

/// The answer relation: `n` scored tuples over `m` categorical attributes.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    attr_names: Vec<String>,
    /// Per-attribute active domain, display text per dense code.
    domains: Vec<Vec<String>>,
    /// Row-major codes: `codes[t * m + i]` is attribute `i` of tuple `t`.
    codes: Vec<u32>,
    /// `vals[t]` is the score of tuple `t`; non-increasing in `t`.
    vals: Vec<f64>,
    m: usize,
}

impl AnswerSet {
    /// Number of grouping attributes `m`.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// Number of answer tuples `n`.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Attribute names, in order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Size of attribute `i`'s active domain.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domains[i].len()
    }

    /// Display text for code `c` of attribute `i`.
    pub fn code_text(&self, i: usize, c: u32) -> &str {
        &self.domains[i][c as usize]
    }

    /// Look up the code of a display value in attribute `i`'s domain.
    pub fn code_of(&self, i: usize, text: &str) -> Option<u32> {
        self.domains[i]
            .iter()
            .position(|v| v == text)
            .map(|p| p as u32)
    }

    /// The codes of tuple `t`.
    #[inline]
    pub fn tuple(&self, t: TupleId) -> &[u32] {
        let s = t as usize * self.m;
        &self.codes[s..s + self.m]
    }

    /// The score of tuple `t`.
    #[inline]
    pub fn val(&self, t: TupleId) -> f64 {
        self.vals[t as usize]
    }

    /// All scores, rank-ordered.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Iterator over `(TupleId, codes, val)` in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[u32], f64)> {
        (0..self.len() as u32).map(move |t| (t, self.tuple(t), self.val(t)))
    }

    /// The singleton-cluster pattern of tuple `t`.
    pub fn singleton(&self, t: TupleId) -> Pattern {
        Pattern::from_tuple(self.tuple(t))
    }

    /// Average score of all `n` tuples — the paper's trivial "Lower Bound"
    /// baseline (the all-`∗` cluster covers everything).
    pub fn mean_val(&self) -> f64 {
        if self.vals.is_empty() {
            return 0.0;
        }
        self.vals.iter().sum::<f64>() / self.vals.len() as f64
    }

    /// Render a pattern against this answer set's domains.
    pub fn pattern_to_string(&self, p: &Pattern) -> String {
        p.display_with(|i, c| self.domains[i][c as usize].clone())
            .to_string()
    }

    /// Sum of `val` and count over the tuples covered by `p` (full scan).
    ///
    /// This is the slow path used by tests and the naive candidate builder;
    /// the algorithms use [`crate::CandidateIndex`] coverage lists instead.
    pub fn scan_coverage(&self, p: &Pattern) -> (Vec<TupleId>, f64) {
        let mut ids = Vec::new();
        let mut sum = 0.0;
        for (t, codes, v) in self.iter() {
            if p.covers_tuple(codes) {
                ids.push(t);
                sum += v;
            }
        }
        (ids, sum)
    }
}

/// Builder that accepts display-valued rows and produces a rank-sorted,
/// dense-coded [`AnswerSet`].
#[derive(Debug)]
pub struct AnswerSetBuilder {
    attr_names: Vec<String>,
    domains: Vec<Vec<String>>,
    domain_maps: Vec<FxHashMap<String, u32>>,
    rows: Vec<(Vec<u32>, f64)>,
}

impl AnswerSetBuilder {
    /// Start building an answer set over the named attributes.
    pub fn new(attr_names: Vec<String>) -> Self {
        let m = attr_names.len();
        AnswerSetBuilder {
            attr_names,
            domains: vec![Vec::new(); m],
            domain_maps: vec![FxHashMap::default(); m],
            rows: Vec::new(),
        }
    }

    /// Append one answer tuple given as display strings plus its score.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::SchemaMismatch`] on an arity mismatch.
    pub fn push(&mut self, attrs: &[&str], val: f64) -> Result<()> {
        if attrs.len() != self.attr_names.len() {
            return Err(QagError::SchemaMismatch(format!(
                "answer tuple arity {} != {}",
                attrs.len(),
                self.attr_names.len()
            )));
        }
        let mut codes = Vec::with_capacity(attrs.len());
        for (i, &a) in attrs.iter().enumerate() {
            let code = match self.domain_maps[i].get(a) {
                Some(&c) => c,
                None => {
                    let c = self.domains[i].len() as u32;
                    self.domains[i].push(a.to_string());
                    self.domain_maps[i].insert(a.to_string(), c);
                    c
                }
            };
            codes.push(code);
        }
        self.rows.push((codes, val));
        Ok(())
    }

    /// Finish: sort by value descending (ties broken by codes ascending so
    /// runs are deterministic) and validate group-by uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`QagError::SchemaMismatch`] if two tuples share identical
    /// attribute values — impossible for a well-formed `GROUP BY` output.
    pub fn finish(mut self) -> Result<AnswerSet> {
        self.rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("aggregate scores must not be NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        for w in self.rows.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(QagError::SchemaMismatch(format!(
                    "duplicate group-by tuple {:?}: the answer relation must come from GROUP BY",
                    w[0].0
                )));
            }
        }
        let m = self.attr_names.len();
        let mut codes = Vec::with_capacity(self.rows.len() * m);
        let mut vals = Vec::with_capacity(self.rows.len());
        for (c, v) in self.rows {
            codes.extend_from_slice(&c);
            vals.push(v);
        }
        Ok(AnswerSet {
            attr_names: self.attr_names,
            domains: self.domains,
            codes,
            vals,
            m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::STAR;

    fn movie_sample() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec![
            "hdec".into(),
            "agegrp".into(),
            "gender".into(),
            "occupation".into(),
        ]);
        // A slice of Figure 1a.
        b.push(&["1975", "20s", "M", "Student"], 4.24).unwrap();
        b.push(&["1980", "20s", "M", "Programmer"], 4.13).unwrap();
        b.push(&["1980", "10s", "M", "Student"], 3.96).unwrap();
        b.push(&["1980", "20s", "M", "Student"], 3.91).unwrap();
        b.push(&["1995", "20s", "F", "Healthcare"], 1.98).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn tuples_sorted_by_value_desc() {
        let s = movie_sample();
        assert_eq!(s.len(), 5);
        assert_eq!(s.arity(), 4);
        let vals: Vec<f64> = s.vals().to_vec();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(vals, sorted);
        assert_eq!(s.val(0), 4.24);
    }

    #[test]
    fn codes_round_trip_to_text() {
        let s = movie_sample();
        let t0 = s.tuple(0);
        assert_eq!(s.code_text(0, t0[0]), "1975");
        assert_eq!(s.code_text(2, t0[2]), "M");
        assert_eq!(s.code_of(3, "Programmer"), Some(s.tuple(1)[3]));
        assert_eq!(s.code_of(3, "Astronaut"), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["zz"], 1.0).unwrap();
        b.push(&["aa"], 1.0).unwrap();
        let s = b.finish().unwrap();
        // "zz" was interned first (code 0) so it sorts before "aa" (code 1)
        // under the code-ascending tie-break.
        assert_eq!(s.code_text(0, s.tuple(0)[0]), "zz");
    }

    #[test]
    fn duplicate_groups_rejected() {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "y"], 1.0).unwrap();
        b.push(&["x", "y"], 2.0).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        assert!(b.push(&["only-one"], 1.0).is_err());
    }

    #[test]
    fn scan_coverage_and_mean() {
        let s = movie_sample();
        // (1980, *, M, *) covers ranks 1..=3 (values 4.13, 3.96, 3.91).
        let hdec_1980 = s.code_of(0, "1980").unwrap();
        let gender_m = s.code_of(2, "M").unwrap();
        let p = Pattern::new(vec![hdec_1980, STAR, gender_m, STAR]);
        let (ids, sum) = s.scan_coverage(&p);
        assert_eq!(ids, vec![1, 2, 3]);
        assert!((sum - (4.13 + 3.96 + 3.91)).abs() < 1e-9);
        assert!((s.mean_val() - (4.24 + 4.13 + 3.96 + 3.91 + 1.98) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_rendering_uses_domain_text() {
        let s = movie_sample();
        let p = Pattern::new(vec![
            s.code_of(0, "1980").unwrap(),
            STAR,
            s.code_of(2, "M").unwrap(),
            STAR,
        ]);
        assert_eq!(s.pattern_to_string(&p), "(1980, *, M, *)");
    }

    #[test]
    fn singleton_covers_only_itself_among_distinct_tuples() {
        let s = movie_sample();
        let p = s.singleton(2);
        let (ids, _) = s.scan_coverage(&p);
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn empty_answer_set() {
        let s = AnswerSetBuilder::new(vec!["a".into()]).finish().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.mean_val(), 0.0);
    }
}
