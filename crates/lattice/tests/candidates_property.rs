//! Property tests for the §6.3 candidate index: the optimized inverted
//! build must be semantically identical to the naive scan, and the index
//! must be closed under the merge operation on arbitrary relations.

use proptest::prelude::*;
use qagview_lattice::{AnswerSet, AnswerSetBuilder, CandidateIndex, Pattern};

fn arb_answers() -> impl Strategy<Value = AnswerSet> {
    (2usize..=4, 5usize..=20, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut builder = AnswerSetBuilder::new((0..m).map(|i| format!("a{i}")).collect());
        let mut seen = std::collections::HashSet::new();
        let mut added = 0usize;
        while added < n {
            let codes: Vec<u32> = (0..m).map(|_| next() % 5).collect();
            if !seen.insert(codes.clone()) {
                continue;
            }
            let texts: Vec<String> = codes.iter().map(|c| format!("v{c}")).collect();
            let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
            builder.push(&refs, f64::from(next() % 500) / 10.0).unwrap();
            added += 1;
        }
        builder.finish().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed and naive builds agree on the candidate set, every coverage
    /// list, and every sum.
    #[test]
    fn indexed_build_equals_naive(answers in arb_answers(), l_frac in 0.1f64..=1.0) {
        let l = ((answers.len() as f64 * l_frac) as usize).clamp(1, answers.len());
        let fast = CandidateIndex::build(&answers, l).unwrap();
        let slow = CandidateIndex::build_naive(&answers, l).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (_, info) in fast.iter() {
            let sid = slow.id_of(&info.pattern).expect("same candidate set");
            let sinfo = slow.info(sid);
            prop_assert_eq!(&info.cov, &sinfo.cov);
            prop_assert!((info.sum - sinfo.sum).abs() < 1e-9);
        }
    }

    /// Every coverage list matches a full scan of the relation.
    #[test]
    fn coverage_lists_match_scans(answers in arb_answers()) {
        let l = (answers.len() / 2).max(1);
        let index = CandidateIndex::build(&answers, l).unwrap();
        for (_, info) in index.iter() {
            let (ids, sum) = answers.scan_coverage(&info.pattern);
            prop_assert_eq!(&info.cov, &ids);
            prop_assert!((info.sum - sum).abs() < 1e-9);
        }
    }

    /// The sharded parallel build is byte-identical to the sequential build
    /// on arbitrary relations and thread counts — coverage lists, bitsets,
    /// and float sums (compared bit-for-bit).
    #[test]
    fn parallel_build_equals_sequential(answers in arb_answers(), threads in 2usize..=8) {
        let l = (answers.len() / 2).max(1);
        let seq = CandidateIndex::build_sequential(&answers, l).unwrap();
        let par = CandidateIndex::build_parallel(&answers, l, threads).unwrap();
        prop_assert_eq!(par.len(), seq.len());
        for (id, info) in par.iter() {
            let sinfo = seq.info(id);
            prop_assert_eq!(&info.pattern, &sinfo.pattern);
            prop_assert_eq!(&info.cov, &sinfo.cov);
            prop_assert_eq!(info.sum.to_bits(), sinfo.sum.to_bits());
            prop_assert_eq!(&info.cov_bits, &sinfo.cov_bits);
        }
    }

    /// The candidate set is closed under LCA for pairs that each cover a
    /// top-L tuple (the property the algorithms rely on for `require`).
    #[test]
    fn closed_under_lca(answers in arb_answers()) {
        let l = answers.len().min(4);
        let index = CandidateIndex::build(&answers, l).unwrap();
        let patterns: Vec<Pattern> = index.iter().map(|(_, i)| i.pattern.clone()).collect();
        for a in patterns.iter().take(40) {
            for b in patterns.iter().take(40) {
                let lca = a.lca(b);
                prop_assert!(
                    index.id_of(&lca).is_some(),
                    "LCA of two candidates missing from the index"
                );
            }
        }
    }

    /// Candidate count is exactly the number of distinct generalizations of
    /// the top-L tuples.
    #[test]
    fn candidate_count_is_distinct_ancestor_count(answers in arb_answers()) {
        let l = (answers.len() / 3).max(1);
        let index = CandidateIndex::build(&answers, l).unwrap();
        let mut expected = std::collections::HashSet::new();
        for t in 0..l as u32 {
            Pattern::for_each_generalization(answers.tuple(t), |slots| {
                expected.insert(Pattern::new(slots.to_vec()));
            });
        }
        prop_assert_eq!(index.len(), expected.len());
    }
}
