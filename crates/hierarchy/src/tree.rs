//! The per-attribute concept hierarchy tree.

use qagview_common::{FxHashMap, QagError, Result};

/// Identifier of a node within one [`ConceptHierarchy`].
pub type NodeId = u32;

#[derive(Debug, Clone)]
struct Node {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: u32,
}

/// A rooted tree over one attribute's domain: leaves are domain values,
/// internal nodes are generalizations (e.g. age ranges, year → decade).
#[derive(Debug, Clone)]
pub struct ConceptHierarchy {
    nodes: Vec<Node>,
    leaf_by_label: FxHashMap<String, NodeId>,
}

impl ConceptHierarchy {
    /// Create a hierarchy with only a root (the `∗`-equivalent).
    pub fn new(root_label: impl Into<String>) -> Self {
        ConceptHierarchy {
            nodes: vec![Node {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
            leaf_by_label: FxHashMap::default(),
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Add a child under `parent`, returning its id. `is_leaf` registers the
    /// label for [`ConceptHierarchy::leaf`] lookup.
    ///
    /// # Errors
    ///
    /// Fails on an unknown parent or duplicate leaf label.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        is_leaf: bool,
    ) -> Result<NodeId> {
        let label = label.into();
        if parent as usize >= self.nodes.len() {
            return Err(QagError::param(format!("unknown parent node {parent}")));
        }
        if is_leaf && self.leaf_by_label.contains_key(&label) {
            return Err(QagError::param(format!("duplicate leaf label `{label}`")));
        }
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(Node {
            label: label.clone(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent as usize].children.push(id);
        if is_leaf {
            self.leaf_by_label.insert(label, id);
        }
        Ok(id)
    }

    /// Build the two-level hierarchy equivalent to the base framework:
    /// root = `∗`, one leaf per domain value.
    pub fn flat(root_label: &str, values: &[&str]) -> Result<Self> {
        let mut h = ConceptHierarchy::new(root_label);
        for v in values {
            h.add_child(0, *v, true)?;
        }
        Ok(h)
    }

    /// Build a range tree over integer values (Fig. 11): leaves are the
    /// values; each level of `bucket_sizes` groups the previous level into
    /// ranges of that many units, coarsest last.
    ///
    /// Example: `range_tree("age", 0, 100, &[20, 40])` yields leaves 0..100,
    /// twenty-unit ranges `[0,20)`, `[20,40)`, …, and forty-unit ranges
    /// above them.
    pub fn range_tree(name: &str, lo: i64, hi: i64, bucket_sizes: &[i64]) -> Result<Self> {
        if lo >= hi {
            return Err(QagError::param("range_tree requires lo < hi"));
        }
        for w in bucket_sizes.windows(2) {
            if w[1] % w[0] != 0 {
                return Err(QagError::param(
                    "each bucket size must divide the next coarser one",
                ));
            }
        }
        let mut h = ConceptHierarchy::new(format!("{name}:*"));
        // Build coarsest-to-finest so parents exist before children.
        let mut levels: Vec<Vec<(i64, i64, NodeId)>> = Vec::new();
        let mut sizes: Vec<i64> = bucket_sizes.to_vec();
        sizes.reverse();
        for (li, &size) in sizes.iter().enumerate() {
            let mut level = Vec::new();
            let mut start = lo - lo.rem_euclid(size);
            while start < hi {
                let end = start + size;
                let parent = if li == 0 {
                    h.root()
                } else {
                    levels[li - 1]
                        .iter()
                        .find(|&&(s, e, _)| s <= start && end <= e)
                        .map(|&(_, _, id)| id)
                        .ok_or_else(|| QagError::internal("range nesting broken"))?
                };
                let id = h.add_child(parent, format!("[{start},{end})"), false)?;
                level.push((start, end, id));
                start = end;
            }
            levels.push(level);
        }
        for v in lo..hi {
            let parent = match levels.last() {
                None => h.root(),
                Some(level) => level
                    .iter()
                    .find(|&&(s, e, _)| s <= v && v < e)
                    .map(|&(_, _, id)| id)
                    .ok_or_else(|| QagError::internal("leaf outside all ranges"))?,
            };
            h.add_child(parent, v.to_string(), true)?;
        }
        Ok(h)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Node label.
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id as usize].label
    }

    /// Node depth (root = 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].depth
    }

    /// Parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id as usize].parent
    }

    /// The leaf registered for a domain value.
    pub fn leaf(&self, label: &str) -> Option<NodeId> {
        self.leaf_by_label.get(label).copied()
    }

    /// Whether `ancestor` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Least common ancestor of two nodes — `O(depth)` by walking the deeper
    /// node up first (the paper cites the `O(log n)` method \[18\]; tree
    /// depths here are tiny constants).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("nodes share the root");
            b = self.parent(b).expect("nodes share the root");
        }
        a
    }

    /// LCA of a non-empty set of nodes.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn lca_of(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "lca_of requires at least one node");
        nodes[1..].iter().fold(nodes[0], |acc, &n| self.lca(acc, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_hierarchy_mimics_star() {
        let h = ConceptHierarchy::flat("*", &["M", "F"]).unwrap();
        assert_eq!(h.len(), 3);
        let m = h.leaf("M").unwrap();
        let f = h.leaf("F").unwrap();
        assert_eq!(h.lca(m, f), h.root());
        assert_eq!(h.lca(m, m), m);
        assert!(h.is_ancestor_or_self(h.root(), m));
        assert!(!h.is_ancestor_or_self(m, f));
    }

    #[test]
    fn paper_age_example() {
        // Fig. 11: union of [20,40) and 55 is [20,60).
        let h = ConceptHierarchy::range_tree("age", 0, 80, &[20, 40]).unwrap();
        let v25 = h.leaf("25").unwrap();
        let v55 = h.leaf("55").unwrap();
        // 25 ∈ [20,40) ⊂ [0,40); 55 ∈ [40,60) ⊂ [40,80): LCA is the root.
        assert_eq!(h.lca(v25, v55), h.root());
        // A tighter union inside one fine bucket (the Fig. 11 spirit):
        let v45 = h.leaf("45").unwrap();
        assert_eq!(h.label(h.lca(v55, v45)), "[40,60)");
        // And across fine buckets within one coarse bucket:
        let v65 = h.leaf("65").unwrap();
        assert_eq!(h.label(h.lca(v55, v65)), "[40,80)");
    }

    #[test]
    fn range_tree_structure() {
        let h = ConceptHierarchy::range_tree("year", 1990, 2000, &[5]).unwrap();
        let y1991 = h.leaf("1991").unwrap();
        let y1994 = h.leaf("1994").unwrap();
        let y1996 = h.leaf("1996").unwrap();
        assert_eq!(h.label(h.lca(y1991, y1994)), "[1990,1995)");
        assert_eq!(h.lca(y1991, y1996), h.root());
        assert_eq!(h.depth(y1991), 2);
    }

    #[test]
    fn lca_of_set() {
        let h = ConceptHierarchy::range_tree("age", 0, 60, &[10, 30]).unwrap();
        let nodes: Vec<NodeId> = ["21", "24", "27"]
            .iter()
            .map(|v| h.leaf(v).unwrap())
            .collect();
        assert_eq!(h.label(h.lca_of(&nodes)), "[20,30)");
        let wider: Vec<NodeId> = ["21", "5"].iter().map(|v| h.leaf(v).unwrap()).collect();
        assert_eq!(h.label(h.lca_of(&wider)), "[0,30)");
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(ConceptHierarchy::range_tree("x", 5, 5, &[2]).is_err());
        assert!(ConceptHierarchy::range_tree("x", 0, 10, &[3, 7]).is_err());
        let mut h = ConceptHierarchy::new("*");
        assert!(h.add_child(99, "y", false).is_err());
        h.add_child(0, "dup", true).unwrap();
        assert!(h.add_child(0, "dup", true).is_err());
    }

    #[test]
    fn depth_and_parent_bookkeeping() {
        let mut h = ConceptHierarchy::new("*");
        let a = h.add_child(0, "a", false).unwrap();
        let b = h.add_child(a, "b", true).unwrap();
        assert_eq!(h.depth(b), 2);
        assert_eq!(h.parent(b), Some(a));
        assert_eq!(h.parent(0), None);
        assert!(!h.is_empty());
    }
}
