//! Hierarchy-aware patterns: clusters whose slots are tree nodes.
//!
//! With a concept hierarchy per attribute, a cluster slot is a node of that
//! attribute's tree: a leaf (concrete value), an internal range (partial
//! generalization), or the root (the old `∗`). Coverage, distance, and LCA
//! lift attribute-wise from the base framework:
//!
//! * **coverage** — slot `a` covers slot `b` iff `a` is an ancestor-or-self
//!   of `b`;
//! * **LCA** — per-attribute tree LCA (Fig. 11's "union of [20,40) and 55
//!   is [20,60)");
//! * **distance** — an attribute contributes 1 unless both slots are the
//!   *same leaf* (matching Def. 3.1, where any `∗` or disagreement counts).

use crate::tree::{ConceptHierarchy, NodeId};
use qagview_common::{QagError, Result};

/// Per-attribute hierarchies for one relation.
#[derive(Debug, Clone)]
pub struct HierarchyContext {
    trees: Vec<ConceptHierarchy>,
}

impl HierarchyContext {
    /// Bundle one hierarchy per attribute.
    pub fn new(trees: Vec<ConceptHierarchy>) -> Self {
        HierarchyContext { trees }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.trees.len()
    }

    /// The hierarchy of attribute `i`.
    pub fn tree(&self, i: usize) -> &ConceptHierarchy {
        &self.trees[i]
    }

    /// Build a pattern from leaf display values.
    ///
    /// # Errors
    ///
    /// Fails if the arity mismatches or any value is not a known leaf.
    pub fn pattern_from_values(&self, values: &[&str]) -> Result<HPattern> {
        if values.len() != self.trees.len() {
            return Err(QagError::param("value arity mismatch"));
        }
        let slots = values
            .iter()
            .zip(&self.trees)
            .map(|(v, t)| {
                t.leaf(v)
                    .ok_or_else(|| QagError::param(format!("unknown leaf `{v}`")))
            })
            .collect::<Result<Vec<NodeId>>>()?;
        Ok(HPattern { slots })
    }

    /// The all-root pattern (the old all-`∗`).
    pub fn all_root(&self) -> HPattern {
        HPattern {
            slots: self.trees.iter().map(|t| t.root()).collect(),
        }
    }

    /// Coverage between patterns.
    pub fn covers(&self, a: &HPattern, b: &HPattern) -> bool {
        a.slots
            .iter()
            .zip(&b.slots)
            .zip(&self.trees)
            .all(|((&x, &y), t)| t.is_ancestor_or_self(x, y))
    }

    /// Lifted Def. 3.1 distance: attributes where the two patterns do not
    /// agree on the same *leaf* value.
    pub fn distance(&self, a: &HPattern, b: &HPattern) -> usize {
        a.slots
            .iter()
            .zip(&b.slots)
            .zip(&self.trees)
            .filter(|((&x, &y), t)| {
                // Same leaf ⇒ agreement; anything else (different nodes, or
                // an internal/range node on either side) counts.
                !(x == y && t.leaf_is(x))
            })
            .count()
    }

    /// Attribute-wise LCA — the hierarchy `Merge` (Fig. 11).
    pub fn lca(&self, a: &HPattern, b: &HPattern) -> HPattern {
        HPattern {
            slots: a
                .slots
                .iter()
                .zip(&b.slots)
                .zip(&self.trees)
                .map(|((&x, &y), t)| t.lca(x, y))
                .collect(),
        }
    }

    /// Render a pattern with node labels.
    pub fn to_string(&self, p: &HPattern) -> String {
        let parts: Vec<&str> = p
            .slots
            .iter()
            .zip(&self.trees)
            .map(|(&n, t)| t.label(n))
            .collect();
        format!("({})", parts.join(", "))
    }
}

impl ConceptHierarchy {
    /// Whether `node` is a registered leaf.
    pub fn leaf_is(&self, node: NodeId) -> bool {
        self.leaf(self.label(node)) == Some(node)
    }
}

/// A hierarchy-aware cluster: one tree node per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HPattern {
    /// One node per attribute, indexed like the context's trees.
    pub slots: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Age (range tree) × gender (flat) context.
    fn ctx() -> HierarchyContext {
        HierarchyContext::new(vec![
            ConceptHierarchy::range_tree("age", 0, 60, &[10, 30]).unwrap(),
            ConceptHierarchy::flat("*", &["M", "F"]).unwrap(),
        ])
    }

    #[test]
    fn pattern_construction_and_rendering() {
        let c = ctx();
        let p = c.pattern_from_values(&["25", "M"]).unwrap();
        assert_eq!(c.to_string(&p), "(25, M)");
        assert!(c.pattern_from_values(&["250", "M"]).is_err());
        assert!(c.pattern_from_values(&["25"]).is_err());
    }

    #[test]
    fn lca_generalizes_to_ranges_not_star() {
        let c = ctx();
        let a = c.pattern_from_values(&["21", "M"]).unwrap();
        let b = c.pattern_from_values(&["27", "M"]).unwrap();
        let l = c.lca(&a, &b);
        // Ages generalize to the decade range, not to ∗; gender stays M.
        assert_eq!(c.to_string(&l), "([20,30), M)");
        assert!(c.covers(&l, &a) && c.covers(&l, &b));
    }

    #[test]
    fn lca_across_coarse_buckets() {
        let c = ctx();
        let a = c.pattern_from_values(&["5", "F"]).unwrap();
        let b = c.pattern_from_values(&["25", "M"]).unwrap();
        let l = c.lca(&a, &b);
        assert_eq!(c.to_string(&l), "([0,30), *)");
    }

    #[test]
    fn coverage_respects_tree() {
        let c = ctx();
        let leaf = c.pattern_from_values(&["25", "M"]).unwrap();
        let range = c.lca(&leaf, &c.pattern_from_values(&["29", "M"]).unwrap());
        assert!(c.covers(&range, &leaf));
        assert!(!c.covers(&leaf, &range));
        let root = c.all_root();
        assert!(c.covers(&root, &leaf) && c.covers(&root, &range));
    }

    #[test]
    fn distance_counts_non_leaf_agreement() {
        let c = ctx();
        let a = c.pattern_from_values(&["25", "M"]).unwrap();
        let b = c.pattern_from_values(&["25", "F"]).unwrap();
        assert_eq!(c.distance(&a, &b), 1);
        assert_eq!(c.distance(&a, &a), 0);
        // A range slot counts even against itself (like ∗ in Def. 3.1).
        let r = c.lca(&a, &c.pattern_from_values(&["27", "M"]).unwrap());
        assert_eq!(c.distance(&r, &r), 1);
        assert_eq!(c.distance(&r, &a), 1);
        assert_eq!(c.distance(&c.all_root(), &c.all_root()), 2);
    }

    #[test]
    fn hierarchy_lca_is_tighter_than_star() {
        // The whole point of App. A.6: merging 21 and 27 keeps an
        // informative range where the base framework would emit ∗.
        let c = ctx();
        let a = c.pattern_from_values(&["21", "M"]).unwrap();
        let b = c.pattern_from_values(&["27", "F"]).unwrap();
        let l = c.lca(&a, &b);
        assert_eq!(c.to_string(&l), "([20,30), *)");
        // [20,30) covers fewer leaves than the root would.
        let tree = c.tree(0);
        let node = l.slots[0];
        assert_ne!(node, tree.root());
    }
}
