//! Hierarchy-aware summarization — the App. A.6 extension executed.
//!
//! The paper notes its "framework and algorithms can be extended to more
//! fine-grained generalizations of values beyond ∗ (by introducing a
//! concept hierarchy over the domain)". This module lifts the Bottom-Up
//! greedy (Algorithm 1) onto [`HPattern`]s: `Merge` replaces a pair by its
//! *tree* LCA — so merging ages 21 and 27 yields the range `[20,30)` rather
//! than jumping to `∗` — and the coverage, distance, and antichain logic
//! use the lifted definitions of [`crate::hpattern`].
//!
//! Coverage is evaluated by scanning the relation (no 2^m candidate index:
//! with hierarchies the ancestor set is per-tree, and the instances this
//! extension targets are the small interactive ones).

use crate::hpattern::{HPattern, HierarchyContext};
use qagview_common::{FixedBitSet, QagError, Result};

/// One scored tuple of the relation, already expressed as hierarchy leaves.
#[derive(Debug, Clone)]
pub struct HTuple {
    /// Leaf node per attribute.
    pub leaves: HPattern,
    /// The tuple's score.
    pub val: f64,
}

/// A hierarchy-aware cluster with its coverage statistics.
#[derive(Debug, Clone)]
pub struct HCluster {
    /// The (possibly range-valued) pattern.
    pub pattern: HPattern,
    /// Indices of covered tuples, ascending.
    pub members: Vec<usize>,
    /// Sum of member scores.
    pub sum: f64,
}

impl HCluster {
    /// Average score of covered tuples.
    pub fn avg(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.sum / self.members.len() as f64
        }
    }
}

/// A hierarchy-aware solution.
#[derive(Debug, Clone)]
pub struct HSolution {
    /// Chosen clusters, sorted by descending average.
    pub clusters: Vec<HCluster>,
    /// Union coverage size.
    pub covered: usize,
    /// Union score sum.
    pub sum: f64,
}

impl HSolution {
    /// The Max-Avg objective over the union coverage.
    pub fn avg(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.sum / self.covered as f64
        }
    }
}

fn coverage(ctx: &HierarchyContext, pattern: &HPattern, tuples: &[HTuple]) -> (Vec<usize>, f64) {
    let mut members = Vec::new();
    let mut sum = 0.0;
    for (i, t) in tuples.iter().enumerate() {
        if ctx.covers(pattern, &t.leaves) {
            members.push(i);
            sum += t.val;
        }
    }
    (members, sum)
}

/// Hierarchy-aware Bottom-Up: start from the top-`l` singleton patterns,
/// enforce pairwise distance `≥ d` and then the size limit `k` by greedily
/// merging the pair whose tree-LCA yields the best resulting average.
///
/// `tuples` must be sorted by descending `val` (like the paper's `S`).
pub fn bottom_up_hierarchical(
    ctx: &HierarchyContext,
    tuples: &[HTuple],
    k: usize,
    l: usize,
    d: usize,
) -> Result<HSolution> {
    if k == 0 || l == 0 || l > tuples.len() {
        return Err(QagError::param("requires k >= 1 and 1 <= L <= n"));
    }
    if d > ctx.arity() {
        return Err(QagError::param("D exceeds the attribute count"));
    }
    for w in tuples.windows(2) {
        if w[0].val < w[1].val {
            return Err(QagError::param("tuples must be sorted by descending val"));
        }
    }

    let mut members: Vec<HPattern> = Vec::with_capacity(l);
    for t in &tuples[..l] {
        if !members.contains(&t.leaves) {
            members.push(t.leaves.clone());
        }
    }

    let mut covered = FixedBitSet::new(tuples.len());
    let mut sum = 0.0;
    for p in &members {
        let (ids, _) = coverage(ctx, p, tuples);
        for i in ids {
            if covered.insert(i) {
                sum += tuples[i].val;
            }
        }
    }

    // Phase 1 (distance), then phase 2 (size), via the same greedy step.
    loop {
        let violating: Vec<(usize, usize)> =
            pairs_with(&members, |a, b| d > 0 && ctx.distance(a, b) < d);
        if violating.is_empty() {
            break;
        }
        merge_best(
            ctx,
            tuples,
            &mut members,
            &mut covered,
            &mut sum,
            &violating,
        )?;
    }
    while members.len() > k {
        let all = pairs_with(&members, |_, _| true);
        if all.is_empty() {
            break;
        }
        merge_best(ctx, tuples, &mut members, &mut covered, &mut sum, &all)?;
    }

    let mut clusters: Vec<HCluster> = members
        .into_iter()
        .map(|pattern| {
            let (members, csum) = coverage(ctx, &pattern, tuples);
            HCluster {
                pattern,
                members,
                sum: csum,
            }
        })
        .collect();
    clusters.sort_by(|a, b| {
        b.avg()
            .partial_cmp(&a.avg())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(HSolution {
        clusters,
        covered: covered.count_ones(),
        sum,
    })
}

fn pairs_with(
    members: &[HPattern],
    mut pred: impl FnMut(&HPattern, &HPattern) -> bool,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            if pred(&members[i], &members[j]) {
                out.push((i, j));
            }
        }
    }
    out
}

fn merge_best(
    ctx: &HierarchyContext,
    tuples: &[HTuple],
    members: &mut Vec<HPattern>,
    covered: &mut FixedBitSet,
    sum: &mut f64,
    pairs: &[(usize, usize)],
) -> Result<()> {
    let mut best: Option<(f64, HPattern)> = None;
    for &(i, j) in pairs {
        let lca = ctx.lca(&members[i], &members[j]);
        let (ids, _) = coverage(ctx, &lca, tuples);
        let mut dsum = 0.0;
        let mut dcnt = 0usize;
        for &t in &ids {
            if !covered.contains(t) {
                dsum += tuples[t].val;
                dcnt += 1;
            }
        }
        let avg = (*sum + dsum) / (covered.count_ones() + dcnt) as f64;
        if best.as_ref().is_none_or(|(b, _)| avg > *b) {
            best = Some((avg, lca));
        }
    }
    let (_, lca) = best.ok_or_else(|| QagError::internal("merge_best called with no pairs"))?;
    // Evict everything the LCA covers (the lifted Merge), absorb coverage.
    members.retain(|m| !ctx.covers(&lca, m));
    let (ids, _) = coverage(ctx, &lca, tuples);
    for t in ids {
        if covered.insert(t) {
            *sum += tuples[t].val;
        }
    }
    members.push(lca);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ConceptHierarchy;

    /// Age (10-year ranges) × occupation (flat).
    fn ctx() -> HierarchyContext {
        HierarchyContext::new(vec![
            ConceptHierarchy::range_tree("age", 0, 60, &[10]).unwrap(),
            ConceptHierarchy::flat("*", &["Student", "Coder", "Chef"]).unwrap(),
        ])
    }

    fn tuples(ctx: &HierarchyContext) -> Vec<HTuple> {
        // Young students rate high; older chefs rate low.
        let rows: &[(&str, &str, f64)] = &[
            ("23", "Student", 9.0),
            ("27", "Student", 8.5),
            ("21", "Coder", 8.0),
            ("25", "Coder", 7.5),
            ("45", "Chef", 3.0),
            ("52", "Chef", 2.0),
        ];
        rows.iter()
            .map(|&(age, occ, val)| HTuple {
                leaves: ctx.pattern_from_values(&[age, occ]).unwrap(),
                val,
            })
            .collect()
    }

    #[test]
    fn merges_to_ranges_not_star() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        let sol = bottom_up_hierarchical(&ctx, &ts, 2, 4, 0).unwrap();
        assert!(sol.clusters.len() <= 2);
        // The top cluster generalizes ages into [20,30), keeping occupation
        // or generalizing it — but never the root age node.
        let rendered: Vec<String> = sol
            .clusters
            .iter()
            .map(|c| ctx.to_string(&c.pattern))
            .collect();
        assert!(
            rendered.iter().any(|r| r.contains("[20,30)")),
            "expected a decade range, got {rendered:?}"
        );
        for c in &sol.clusters {
            let tree = ctx.tree(0);
            assert_ne!(
                c.pattern.slots[0],
                tree.root(),
                "age must not degrade to *: {rendered:?}"
            );
        }
    }

    #[test]
    fn covers_top_l() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        for l in 1..=4 {
            let sol = bottom_up_hierarchical(&ctx, &ts, 2, l, 0).unwrap();
            let mut covered = vec![false; ts.len()];
            for c in &sol.clusters {
                for &m in &c.members {
                    covered[m] = true;
                }
            }
            for (i, &c) in covered.iter().enumerate().take(l) {
                assert!(c, "top-{l}: tuple {i} uncovered");
            }
        }
    }

    #[test]
    fn distance_constraint_respected() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        let sol = bottom_up_hierarchical(&ctx, &ts, 4, 4, 2).unwrap();
        for (i, a) in sol.clusters.iter().enumerate() {
            for b in &sol.clusters[i + 1..] {
                assert!(ctx.distance(&a.pattern, &b.pattern) >= 2);
            }
        }
    }

    #[test]
    fn solution_is_antichain() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        let sol = bottom_up_hierarchical(&ctx, &ts, 3, 6, 1).unwrap();
        for (i, a) in sol.clusters.iter().enumerate() {
            for (j, b) in sol.clusters.iter().enumerate() {
                if i != j {
                    assert!(!ctx.covers(&a.pattern, &b.pattern));
                }
            }
        }
    }

    #[test]
    fn beats_root_cluster_average() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        let sol = bottom_up_hierarchical(&ctx, &ts, 2, 4, 0).unwrap();
        let global: f64 = ts.iter().map(|t| t.val).sum::<f64>() / ts.len() as f64;
        assert!(
            sol.avg() > global,
            "summary {} vs trivial {global}",
            sol.avg()
        );
    }

    #[test]
    fn parameter_validation() {
        let ctx = ctx();
        let ts = tuples(&ctx);
        assert!(bottom_up_hierarchical(&ctx, &ts, 0, 2, 0).is_err());
        assert!(bottom_up_hierarchical(&ctx, &ts, 2, 0, 0).is_err());
        assert!(bottom_up_hierarchical(&ctx, &ts, 2, 9, 0).is_err());
        assert!(bottom_up_hierarchical(&ctx, &ts, 2, 2, 5).is_err());
        let mut unsorted = ts.clone();
        unsorted.reverse();
        assert!(bottom_up_hierarchical(&ctx, &unsorted, 2, 2, 0).is_err());
    }
}
