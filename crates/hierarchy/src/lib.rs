//! Concept hierarchies and range generalization (paper App. A.6).
//!
//! The base framework generalizes attribute values straight to the
//! don't-care `∗`. For numeric attributes (age) and date-like attributes
//! (release year), the paper's extension introduces a *concept hierarchy*
//! per attribute — a tree whose leaves are domain values and whose internal
//! nodes are ranges (Figs. 11–12) — and generalizes to the least common
//! ancestor in the tree instead of jumping to `∗`.
//!
//! * [`tree`] — the hierarchy tree with `O(depth)` LCA.
//! * [`hpattern`] — hierarchy-aware patterns: per-attribute tree nodes
//!   instead of `code | ∗`, with coverage, distance, and LCA lifted
//!   attribute-wise.
//! * [`summarize`] — the extension executed: Bottom-Up greedy summarization
//!   over hierarchy-aware patterns (merges produce ranges, not `∗`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hpattern;
pub mod summarize;
pub mod tree;

pub use hpattern::{HPattern, HierarchyContext};
pub use summarize::{bottom_up_hierarchical, HCluster, HSolution, HTuple};
pub use tree::{ConceptHierarchy, NodeId};
