//! Protocol robustness: hostile bytes — truncated headers, oversized
//! bodies, bad JSON, unknown session ids, pipelined garbage — always get
//! a typed error response. Never a panic, never a wedged connection, and
//! server state is untouched by refused requests.

mod common;

use common::{gateway, once, script, session_id, view_text, Client};
use proptest::prelude::*;
use qagview_serve::{Server, ServerConfig, SessionConfig};
use std::sync::Arc;

fn parse_status(raw: &[u8]) -> u16 {
    let text = std::str::from_utf8(raw).expect("response head is ASCII");
    assert!(
        text.starts_with("HTTP/1.1 "),
        "not an HTTP response: {text:?}"
    );
    text.split(' ').nth(1).unwrap().parse().unwrap()
}

#[test]
fn refusals_are_typed_and_state_is_untouched() {
    let gw = gateway(SessionConfig::default());
    // Establish a session with one applied command, then throw every
    // class of hostile request at the gateway.
    let create = gw.handle_bytes(b"POST /api/session HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    assert_eq!(parse_status(&create), 200);
    let body_at = create.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let sid = session_id(std::str::from_utf8(&create[body_at..]).unwrap());
    let cmd = script(0).remove(0);
    let frame = |path: &str, body: &str| {
        format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    let apply = gw.handle_bytes(frame(&format!("/api/session/{sid}/command"), &cmd).as_bytes());
    assert_eq!(parse_status(&apply), 200);
    let baseline_info =
        gw.handle_bytes(format!("GET /api/session/{sid} HTTP/1.1\r\n\r\n").as_bytes());
    assert_eq!(parse_status(&baseline_info), 200);

    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"POST /api/session HTTP/1.1\r\ncontent-len".to_vec(), 400),
        (b"POST /api/session HTTP/1.0\r\n\r\n".to_vec(), 501),
        (
            b"POST /api/session HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
        (
            b"POST /api/session HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            frame(&format!("/api/session/{sid}/command"), "{not json").into_bytes(),
            400,
        ),
        (
            frame(&format!("/api/session/{sid}/command"), r#"{"cmd":"warp"}"#).into_bytes(),
            400,
        ),
        (
            frame("/api/session/00000000deadbeef/command", &cmd).into_bytes(),
            404,
        ),
        (
            frame("/api/session/not-hex-at-all/command", &cmd).into_bytes(),
            404,
        ),
        (frame("/api/nowhere", "{}").into_bytes(), 404),
        (
            b"PATCH /api/session HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(),
            405,
        ),
    ];
    for (raw, expected_status) in cases {
        let resp = gw.handle_bytes(&raw);
        let status = parse_status(&resp);
        assert_eq!(
            status,
            expected_status,
            "for {:?}",
            String::from_utf8_lossy(&raw)
        );
        // Every refusal body is machine-readable JSON with a kind slug.
        let body_at = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let body = qagview_common::json::parse(std::str::from_utf8(&resp[body_at..]).unwrap())
            .expect("error bodies are valid JSON");
        assert!(body.path("error.kind").is_some(), "kind missing");
    }

    // None of that touched the established session.
    let info_after = gw.handle_bytes(format!("GET /api/session/{sid} HTTP/1.1\r\n\r\n").as_bytes());
    assert_eq!(baseline_info, info_after, "refusals must not mutate state");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the in-process request path, and
    /// whatever comes back is either nothing (clean EOF) or one
    /// well-formed HTTP response.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0usize..512)) {
        let gw = gateway(SessionConfig::default());
        let resp = gw.handle_bytes(&bytes);
        if !resp.is_empty() {
            let status = parse_status(&resp);
            prop_assert!((200..=599).contains(&status), "status {status}");
        }
    }

    /// Every truncation of a valid request is refused cleanly (or, for
    /// prefixes that happen to end exactly at a request boundary, served).
    #[test]
    fn truncated_valid_requests_never_panic(cut in 0usize..200) {
        let gw = gateway(SessionConfig::default());
        let body = r#"{"cmd":"set_k","value":3}"#;
        let full = format!(
            "POST /api/session/1/command HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let raw = full.as_bytes();
        let cut = cut.min(raw.len());
        let resp = gw.handle_bytes(&raw[..cut]);
        if !resp.is_empty() {
            parse_status(&resp);
        }
    }
}

#[test]
fn tcp_connection_survives_neighbors_sending_garbage() {
    let gw = gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // A healthy client sets up a session.
    let mut good = Client::connect(addr);
    let (status, body) = good.request("POST", "/api/session", b"");
    assert_eq!(status, 200);
    let sid = session_id(&body);
    let cmd = script(1).remove(0);
    let (status, first) = good.request(
        "POST",
        &format!("/api/session/{sid}/command"),
        cmd.as_bytes(),
    );
    assert_eq!(status, 200);

    // A hostile client sends pipelined garbage: one valid request
    // followed by trash. The valid one is served; the trash earns a 400
    // and the connection is closed — never wedged.
    let mut bad = Client::connect(addr);
    bad.send_raw(b"GET /api/healthz HTTP/1.1\r\n\r\n\x00\xff garbage\r\n\r\n");
    let (status, _) = bad.read_response().unwrap();
    assert_eq!(status, 200);
    let (status, _) = bad.read_response().unwrap();
    assert_eq!(status, 400);
    assert!(
        bad.read_response().is_none(),
        "connection closes after framing error"
    );

    // Another hostile client sends an unterminated flood.
    let mut flood = Client::connect(addr);
    flood.send_raw(&vec![b'a'; 20_000]);
    let (status, _) = flood.read_response().unwrap();
    assert_eq!(status, 400);

    // The healthy client's keep-alive connection still works, and the
    // session still answers — byte-identically to before the noise.
    let (status, again) = good.request("GET", &format!("/api/session/{sid}"), b"");
    assert_eq!(status, 200);
    assert!(again.contains("\"resident\":true"));
    let (status, replay) = good.request(
        "POST",
        &format!("/api/session/{sid}/command"),
        script(1)[1].as_bytes(),
    );
    assert_eq!(status, 200);
    assert_ne!(view_text(&first), view_text(&replay)); // the knob moved
    server.shutdown();
}

#[test]
fn engine_refusals_leave_the_session_serving() {
    let gw = gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (_, body) = once(addr, "POST", "/api/session", b"");
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");

    // First command must be set_query: a knob first is a typed 422.
    let (status, body) = once(addr, "POST", &path, br#"{"cmd":"set_k","value":3}"#);
    assert_eq!(status, 422);
    assert!(body.contains("command_rejected"));

    // Bad SQL after a good query is refused, state untouched.
    let set_query = script(0).remove(0);
    let (status, good) = once(addr, "POST", &path, set_query.as_bytes());
    assert_eq!(status, 200);
    let (status, _) = once(
        addr,
        "POST",
        &path,
        br#"{"cmd":"set_query","sql":"SELEKT broken"}"#,
    );
    assert_eq!(status, 422);
    let (status, info) = once(addr, "GET", &format!("/api/session/{sid}"), b"");
    assert_eq!(status, 200);
    assert!(
        info.contains("\"seq\":1"),
        "refused command must not advance seq: {info}"
    );
    // And the view is still reproducible.
    let (status, k2) = once(addr, "POST", &path, br#"{"cmd":"set_k","value":3}"#);
    assert_eq!(status, 200);
    assert_ne!(view_text(&good), view_text(&k2));
    server.shutdown();
}
