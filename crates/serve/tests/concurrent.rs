//! Concurrency correctness: sessions driven from many threads must be
//! indistinguishable — byte for byte, f64 bit for f64 bit — from the same
//! scripts run sequentially against a bare `ExploreSession`, and
//! interleaved commands on one session must serialize cleanly.

mod common;

use common::{bare_replay, once, script, session_id, view_text, Client};
use qagview_common::wire::checksum64;
use qagview_serve::{Server, ServerConfig, SessionConfig};
use std::sync::Arc;

fn digest_of(response_body: &str) -> String {
    qagview_common::json::parse(response_body)
        .unwrap()
        .get("digest")
        .and_then(|d| d.as_str().map(str::to_string))
        .expect("response carries a digest")
}

#[test]
fn disjoint_concurrent_sessions_match_the_sequential_oracle() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    const THREADS: usize = 8;
    let observed: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let (status, body) = client.request("POST", "/api/session", b"");
                    assert_eq!(status, 200, "create failed: {body}");
                    let sid = session_id(&body);
                    let path = format!("/api/session/{sid}/command");
                    script(t)
                        .iter()
                        .map(|cmd| {
                            let (status, body) = client.request("POST", &path, cmd.as_bytes());
                            assert_eq!(status, 200, "thread {t}: {cmd} -> {body}");
                            // The advertised digest is the checksum of the
                            // exact view bytes we are about to compare.
                            let view = view_text(&body);
                            let expect = format!("{:016x}", checksum64(view.as_bytes()));
                            assert_eq!(digest_of(&body), expect, "thread {t} digest");
                            view
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, views) in observed.iter().enumerate() {
        let oracle = bare_replay(&script(t));
        assert_eq!(
            views, &oracle,
            "thread {t}: concurrent views diverge from sequential replay"
        );
    }
    server.shutdown();
}

#[test]
fn interleaved_commands_on_one_session_serialize() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let (status, body) = once(addr, "POST", "/api/session", b"");
    assert_eq!(status, 200);
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");
    let (status, _) = once(addr, "POST", &path, script(0).remove(0).as_bytes());
    assert_eq!(status, 200);

    // Eight threads race valid commands at the same session. The session
    // lock must serialize them: every one succeeds, and the sequence
    // numbers they observe are exactly 2..=9, each claimed once.
    const RACERS: u64 = 8;
    let mut seqs: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RACERS)
            .map(|i| {
                let path = &path;
                scope.spawn(move || {
                    // Group counts in the fixture are 1-2, so 0 and 1 are
                    // the thresholds that keep the answer relation non-empty.
                    let body = format!(r#"{{"cmd":"set_threshold","value":{}}}"#, i % 2);
                    let (status, resp) = once(addr, "POST", path, body.as_bytes());
                    assert_eq!(status, 200, "racer {i}: {resp}");
                    qagview_common::json::parse(&resp)
                        .unwrap()
                        .get("seq")
                        .and_then(qagview_common::json::Json::as_u64)
                        .expect("response carries a seq")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    seqs.sort_unstable();
    assert_eq!(seqs, (2..=RACERS + 1).collect::<Vec<_>>());

    let (status, info) = once(addr, "GET", &format!("/api/session/{sid}"), b"");
    assert_eq!(status, 200);
    assert!(info.contains(&format!("\"seq\":{}", RACERS + 1)), "{info}");
    server.shutdown();
}
