//! Hostile-network integration tests: slow-loris clients, idle
//! keep-alive expiry, mid-request disconnects, expired deadline budgets,
//! and the graceful drain-to-checkpoint path — all against a real TCP
//! [`Server`] with tight [`ServerConfig`] budgets.

mod common;

use common::{bare_replay, gateway, script, session_id, view_text, Client};
use qagview_serve::{Deadline, Server, ServerConfig, SessionConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn tight_cfg() -> ServerConfig {
    ServerConfig {
        max_connections: 32,
        read_timeout: Duration::from_millis(400),
        request_deadline: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(2),
        net_script: None,
    }
}

fn kind_of(body: &str) -> String {
    qagview_common::json::parse(body)
        .unwrap()
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str().map(str::to_string))
        .expect("error body carries a kind")
}

/// Poll until `cond` holds or the budget runs out.
fn eventually(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < budget {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn slow_loris_header_drip_gets_a_408_and_loses_the_connection() {
    let gw = gateway(SessionConfig::default());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();

    let stream = TcpStream::connect(srv.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // Drip the start of a valid request line one byte at a time — a
    // classic slow-loris — then go quiet and let the 300 ms request
    // deadline (armed at the first byte) run out.
    for b in b"GET /api" {
        if writer.write_all(&[*b]).is_err() {
            break; // the server already gave up on us, as it should
        }
        std::thread::sleep(Duration::from_millis(30));
    }

    let mut client = Client::from_stream(stream);
    let (status, body) = client.read_response().expect("a typed 408 before close");
    assert_eq!(status, 408);
    assert_eq!(kind_of(&body), "request_timeout");
    assert!(client.read_response().is_none(), "connection must close");
    assert!(gw.metrics().request_timeouts.load(Ordering::Relaxed) >= 1);
    assert_eq!(gw.metrics().idle_closes.load(Ordering::Relaxed), 0);
    srv.shutdown();
}

#[test]
fn idle_keep_alive_expiry_is_a_silent_close_not_a_408() {
    let gw = gateway(SessionConfig::default());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();

    let mut client = Client::connect(srv.addr());
    let (status, _) = client.request("GET", "/healthz", b"");
    assert_eq!(status, 200);
    // Now go quiet: past the idle timeout the server closes without
    // writing anything (there is nobody mid-request to answer).
    assert!(
        client.read_response().is_none(),
        "server closes the idle connection"
    );
    assert!(gw.metrics().idle_closes.load(Ordering::Relaxed) >= 1);
    assert_eq!(gw.metrics().request_timeouts.load(Ordering::Relaxed), 0);
    assert!(
        eventually(Duration::from_secs(2), || srv.active_connections() == 0),
        "connection thread must be reclaimed"
    );
    srv.shutdown();
}

#[test]
fn mid_body_disconnect_reclaims_the_connection_and_thread() {
    let gw = gateway(SessionConfig::default());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();

    {
        let mut writer = TcpStream::connect(srv.addr()).unwrap();
        writer
            .write_all(b"POST /api/session HTTP/1.1\r\ncontent-length: 10\r\n\r\n{\"b")
            .unwrap();
        writer.flush().unwrap();
        // Drop: the client vanishes three bytes into a ten-byte body.
    }
    assert!(
        eventually(Duration::from_secs(2), || {
            gw.metrics().protocol_errors.load(Ordering::Relaxed) >= 1
        }),
        "a clean hangup mid-body is a framing truncation"
    );
    assert!(
        eventually(Duration::from_secs(2), || srv.active_connections() == 0),
        "server must reclaim the half-fed connection"
    );
    assert_eq!(gw.sessions().resident(), 0, "no session was created");

    // The stalled twin: same half-fed body, but the client stays
    // connected and silent. That is a mid-request timeout — typed 408 —
    // not a framing error.
    let stream = TcpStream::connect(srv.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(b"POST /api/session HTTP/1.1\r\ncontent-length: 10\r\n\r\n{\"b")
        .unwrap();
    writer.flush().unwrap();
    let mut client = Client::from_stream(stream);
    let (status, body) = client.read_response().expect("a typed 408 before close");
    assert_eq!(status, 408);
    assert_eq!(kind_of(&body), "request_timeout");
    assert!(gw.metrics().request_timeouts.load(Ordering::Relaxed) >= 1);
    srv.shutdown();
}

#[test]
fn disconnect_before_reading_the_response_leaves_the_session_unlocked() {
    let gw = gateway(SessionConfig::default());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();
    let bodies = script(0);

    let mut client = Client::connect(srv.addr());
    let (status, created) = client.request("POST", "/api/session", b"");
    assert_eq!(status, 200);
    let id = session_id(&created);
    let path = format!("/api/session/{id}/command");

    {
        // Fire a command and vanish without reading the response.
        let mut writer = TcpStream::connect(srv.addr()).unwrap();
        let head = format!(
            "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            bodies[0].len()
        );
        writer.write_all(head.as_bytes()).unwrap();
        writer.write_all(bodies[0].as_bytes()).unwrap();
        writer.flush().unwrap();
    }
    // The abandoned command still applies exactly once; wait for it.
    assert!(
        eventually(Duration::from_secs(2), || {
            let (_, info) =
                Client::connect(srv.addr()).request("GET", &format!("/api/session/{id}"), b"");
            qagview_common::json::parse(&info)
                .unwrap()
                .get("seq")
                .and_then(|s| s.as_u64())
                == Some(1)
        }),
        "the abandoned command must commit"
    );
    // The session is not wedged: the next command proceeds normally and
    // its view matches the sequential oracle byte for byte.
    let (status, body) = client.request("POST", &path, bodies[1].as_bytes());
    assert_eq!(status, 200);
    assert_eq!(view_text(&body), bare_replay(&bodies[..2])[1]);
    srv.shutdown();
}

#[test]
fn expired_deadline_budget_is_a_typed_503_that_never_mutates_state() {
    let gw = gateway(SessionConfig::default());
    let bodies = script(1);
    let created = gw.handle_bytes(b"POST /api/session HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
    let created = String::from_utf8_lossy(&created);
    let id = session_id(created.split("\r\n\r\n").nth(1).unwrap());
    let path = format!("/api/session/{id}/command");

    let raw = format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        bodies[0].len(),
        bodies[0]
    );
    let mut cursor = std::io::Cursor::new(raw.as_bytes());
    let outcome = qagview_serve::http::read_request(&mut cursor, 1 << 20).unwrap();
    let qagview_serve::http::ReadOutcome::Request(req) = outcome else {
        panic!("fixture request must parse");
    };

    // A budget that is already spent: the command is refused before it
    // touches the session.
    let resp = gw.handle_deadline(&req, Some(Deadline::after(Duration::ZERO)));
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(1));
    assert_eq!(
        kind_of(&String::from_utf8_lossy(&resp.body)),
        "deadline_exceeded"
    );
    assert!(gw.metrics().deadline_exceeded.load(Ordering::Relaxed) >= 1);

    // The refused command left no trace: the same command under no
    // budget is seq 1 and matches the oracle.
    let resp = gw.handle_deadline(&req, None);
    assert_eq!(resp.status, 200);
    let body = String::from_utf8_lossy(&resp.body);
    let doc = qagview_common::json::parse(&body).unwrap();
    assert_eq!(doc.get("seq").and_then(|s| s.as_u64()), Some(1));
    assert_eq!(view_text(&body), bare_replay(&bodies[..1])[0]);
}

#[test]
fn drain_checkpoints_every_resident_session_and_restart_restores_bit_identically() {
    let dir = common::temp_dir("hostile-drain");
    let sessions_cfg = SessionConfig {
        checkpoint_dir: Some(dir.clone()),
        ..SessionConfig::default()
    };
    let gw = gateway(sessions_cfg.clone());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();

    // Three sessions, each five commands into a six-command script.
    let mut ids = Vec::new();
    for variant in 0..3usize {
        let mut client = Client::connect(srv.addr());
        let (_, created) = client.request("POST", "/api/session", b"");
        let id = session_id(&created);
        let bodies = script(variant);
        for body in &bodies[..5] {
            let (status, _) = client.request(
                "POST",
                &format!("/api/session/{id}/command"),
                body.as_bytes(),
            );
            assert_eq!(status, 200);
        }
        ids.push(id);
    }
    assert_eq!(gw.sessions().resident(), 3);

    let report = srv.drain();
    assert_eq!(
        report.checkpointed, 3,
        "drain must checkpoint every resident session"
    );
    assert_eq!(report.checkpoint_failures, 0);
    assert_eq!(gw.sessions().resident(), 0);
    assert_eq!(gw.metrics().drains.load(Ordering::Relaxed), 1);
    assert_eq!(gw.metrics().drain_checkpoints.load(Ordering::Relaxed), 3);
    // Draining twice is a no-op, not a second sweep.
    assert_eq!(srv.drain(), qagview_serve::DrainReport::default());

    // A restarted server over the same directory picks each session up
    // exactly where it stopped: command six matches the oracle's.
    let gw2 = gateway(sessions_cfg);
    let mut srv2 = Server::start(std::sync::Arc::clone(&gw2), "127.0.0.1:0", tight_cfg()).unwrap();
    for (variant, id) in ids.iter().enumerate() {
        let bodies = script(variant);
        let (status, body) = Client::connect(srv2.addr()).request(
            "POST",
            &format!("/api/session/{id}/command"),
            bodies[5].as_bytes(),
        );
        assert_eq!(status, 200);
        let doc = qagview_common::json::parse(&body).unwrap();
        // seq counts commands within a residency and restarts at a
        // restore; what must carry over bit-identically is the state.
        assert_eq!(doc.get("seq").and_then(|s| s.as_u64()), Some(1));
        assert_eq!(
            doc.get("provenance").and_then(|p| p.get("restored")),
            Some(&qagview_common::json::Json::from(true)),
            "the first command after restart is flagged restored"
        );
        assert_eq!(view_text(&body), bare_replay(&bodies)[5]);
    }
    srv2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_flips_to_503_draining_and_mutations_are_refused() {
    let gw = gateway(SessionConfig::default());
    let mut srv = Server::start(std::sync::Arc::clone(&gw), "127.0.0.1:0", tight_cfg()).unwrap();

    let (status, body) = Client::connect(srv.addr()).request("GET", "/healthz", b"");
    assert_eq!(status, 200);
    let doc = qagview_common::json::parse(&body).unwrap();
    assert_eq!(doc.get("state").and_then(|s| s.as_str()), Some("serving"));
    assert!(
        doc.get("metrics").is_some(),
        "healthz carries a metrics snapshot"
    );

    gw.begin_drain();
    // The TCP accept loop is still up (drain() not called), so the wire
    // view of a draining gateway is observable.
    let (status, body) = Client::connect(srv.addr()).request("GET", "/healthz", b"");
    assert_eq!(status, 503);
    let doc = qagview_common::json::parse(&body).unwrap();
    assert_eq!(doc.get("state").and_then(|s| s.as_str()), Some("draining"));

    let (status, body) = Client::connect(srv.addr()).request("POST", "/api/session", b"");
    assert_eq!(status, 503);
    assert_eq!(kind_of(&body), "draining");
    assert!(gw.metrics().refused_draining.load(Ordering::Relaxed) >= 1);
    // Reads keep answering while draining.
    let (status, _) = Client::connect(srv.addr()).request("GET", "/api/metrics", b"");
    assert_eq!(status, 200);
    srv.shutdown();
}
