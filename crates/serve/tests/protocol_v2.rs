//! Wire-protocol v2 coverage: a v1-shaped client still round-trips
//! exact-mode sessions untouched, and the new fidelity surface
//! (`fidelity` on create, `set_fidelity` / `await_exact` commands, the
//! typed fidelity objects in responses) behaves end to end over HTTP.

mod common;

use common::{bare_replay, once, script, session_id, SQL};
use qagview_common::json::{self, Json};
use qagview_serve::{Server, ServerConfig, SessionConfig};
use std::sync::Arc;

/// What a v1 client reads out of a command response: exactly the fields
/// the v1 protocol defined, via get-based lookups that ignore everything
/// else. Panics if any v1 field went missing.
fn v1_view(response_body: &str) -> String {
    let doc = json::parse(response_body).unwrap();
    for field in ["session", "seq", "digest", "provenance", "view"] {
        assert!(doc.get(field).is_some(), "v1 field {field:?} missing");
    }
    let prov = doc.get("provenance").unwrap();
    for field in [
        "group_phase",
        "answers",
        "plane",
        "degradations",
        "restored",
    ] {
        assert!(prov.get(field).is_some(), "v1 provenance.{field} missing");
    }
    let view = doc.get("view").unwrap();
    for field in ["state", "summary", "plot", "transition"] {
        assert!(view.get(field).is_some(), "v1 view.{field} missing");
    }
    view.to_text()
}

fn fidelity_mode(response_body: &str) -> String {
    json::parse(response_body)
        .unwrap()
        .get("fidelity")
        .and_then(|f| f.get("mode"))
        .and_then(|m| m.as_str().map(str::to_string))
        .expect("v2 response carries a fidelity object")
}

fn summary_text(response_body: &str) -> String {
    json::parse(response_body)
        .unwrap()
        .get("view")
        .and_then(|v| v.get("summary"))
        .expect("view carries a summary")
        .to_text()
}

#[test]
fn v1_shaped_client_round_trips_exact_sessions() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // v1 create bodies: empty, and budget-only. No fidelity field.
    let (status, body) = once(addr, "POST", "/api/session", b"");
    assert_eq!(status, 200, "{body}");
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");

    let views: Vec<String> = script(0)
        .iter()
        .map(|cmd| {
            let (status, body) = once(addr, "POST", &path, cmd.as_bytes());
            assert_eq!(status, 200, "{cmd} -> {body}");
            // The server now stamps "v":2 and a fidelity object; a
            // get-based v1 client never looks at them.
            assert!(body.contains("\"v\":2"), "{body}");
            assert_eq!(fidelity_mode(&body), "exact");
            v1_view(&body)
        })
        .collect();

    // The views a v1 client extracts are byte-identical to the bare
    // sequential oracle — the v1 contract, unchanged under v2.
    assert_eq!(views, bare_replay(&script(0)));
    server.shutdown();
}

#[test]
fn approximate_session_promotes_over_the_wire() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // v2 create: fidelity requested at the session level.
    let (status, body) = once(
        addr,
        "POST",
        "/api/session",
        br#"{"fidelity":"approximate"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");

    let set_query = format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#);
    let (status, approx) = once(addr, "POST", &path, set_query.as_bytes());
    assert_eq!(status, 200, "{approx}");
    assert_eq!(fidelity_mode(&approx), "approximate");
    let doc = json::parse(&approx).unwrap();
    let fid = doc.get("fidelity").unwrap();
    assert!(fid.get("rel_err").is_some(), "{approx}");
    assert!(
        matches!(fid.get("confidence"), Some(Json::Num(c)) if (c - 0.95).abs() < 1e-12),
        "{approx}"
    );

    // Promote. The response is the refined diff; the summary it carries
    // is the exact one.
    let (status, refined) = once(addr, "POST", &path, br#"{"cmd":"await_exact"}"#);
    assert_eq!(status, 200, "{refined}");
    assert_eq!(fidelity_mode(&refined), "refined");

    // A cold exact session over the same SQL must serve the same summary
    // bytes.
    let (status, body) = once(addr, "POST", "/api/session", br#"{"fidelity":"exact"}"#);
    assert_eq!(status, 200, "{body}");
    let sid2 = session_id(&body);
    let path2 = format!("/api/session/{sid2}/command");
    let (status, exact) = once(addr, "POST", &path2, set_query.as_bytes());
    assert_eq!(status, 200, "{exact}");
    assert_eq!(fidelity_mode(&exact), "exact");
    assert_eq!(summary_text(&refined), summary_text(&exact));

    // After promotion the session serves exact views.
    let (status, after) = once(addr, "POST", &path, br#"{"cmd":"set_k","value":3}"#);
    assert_eq!(status, 200, "{after}");
    assert_eq!(fidelity_mode(&after), "exact");
    server.shutdown();
}

#[test]
fn set_fidelity_command_switches_a_live_session() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let (status, body) = once(addr, "POST", "/api/session", b"");
    assert_eq!(status, 200, "{body}");
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");

    let set_query = format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#);
    let (status, body) = once(addr, "POST", &path, set_query.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert_eq!(fidelity_mode(&body), "exact");

    let (status, body) = once(
        addr,
        "POST",
        &path,
        br#"{"cmd":"set_fidelity","mode":"approximate"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(fidelity_mode(&body), "approximate");

    let (status, body) = once(
        addr,
        "POST",
        &path,
        br#"{"cmd":"set_fidelity","mode":"exact"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(fidelity_mode(&body), "exact");
    server.shutdown();
}

#[test]
fn bad_fidelity_values_are_typed_refusals() {
    let gw = common::gateway(SessionConfig::default());
    let mut server =
        Server::start(Arc::clone(&gw), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let (status, body) = once(addr, "POST", "/api/session", br#"{"fidelity":"fuzzy"}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_command"), "{body}");

    let (status, body) = once(addr, "POST", "/api/session", br#"{"fidelity":7}"#);
    assert_eq!(status, 400, "{body}");

    let (status, body) = once(addr, "POST", "/api/session", b"");
    assert_eq!(status, 200);
    let sid = session_id(&body);
    let path = format!("/api/session/{sid}/command");
    let (status, body) = once(
        addr,
        "POST",
        &path,
        br#"{"cmd":"set_fidelity","mode":"fuzzy"}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_command"), "{body}");
    server.shutdown();
}
