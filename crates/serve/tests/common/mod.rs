//! Shared fixture for the serve integration tests: a small in-memory
//! catalog, gateway/server builders, a minimal blocking HTTP client, and
//! scripted sessions.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use qagview_interactive::{Explorer, ExplorerConfig};
use qagview_serve::{Gateway, GatewayConfig, SessionConfig};
use qagview_storage::{Catalog, Cell, ColumnType, Schema, TableBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// A compact three-attribute rating table with enough distinct groups to
/// make summaries, drills, and transitions non-trivial.
pub fn catalog() -> Catalog {
    let schema = Schema::from_pairs(&[
        ("genre", ColumnType::Str),
        ("who", ColumnType::Str),
        ("rating", ColumnType::Float),
    ])
    .unwrap();
    let mut b = TableBuilder::new(schema);
    let rows: &[(&str, &str, f64)] = &[
        ("adventure", "student", 4.75),
        ("adventure", "student", 4.5),
        ("adventure", "coder", 4.25),
        ("adventure", "coder", 4.0),
        ("adventure", "artist", 3.75),
        ("romance", "student", 2.0),
        ("romance", "coder", 1.5),
        ("romance", "coder", 1.25),
        ("romance", "artist", 2.25),
        ("western", "student", 3.0),
        ("western", "coder", 3.5),
        ("western", "artist", 2.75),
        ("scifi", "student", 4.0),
        ("scifi", "coder", 3.25),
        ("scifi", "artist", 3.0),
    ];
    for &(g, w, r) in rows {
        b.push_row(vec![g.into(), w.into(), Cell::Float(r)])
            .unwrap();
    }
    let mut c = Catalog::new();
    c.register("ratings", b.finish());
    c
}

/// The fixture query (dyadic ratings, so every aggregate is exact).
pub const SQL: &str = "SELECT genre, who, AVG(rating) AS val FROM ratings \
                       GROUP BY genre, who HAVING count(*) > 0 ORDER BY val DESC";

/// A fresh unique temp directory.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qag-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A gateway over a fresh engine, with the given session knobs.
pub fn gateway(sessions: SessionConfig) -> Arc<Gateway> {
    gateway_with(ExplorerConfig::default(), sessions)
}

/// A gateway over an engine with an explicit [`ExplorerConfig`] (to wire
/// in a store directory or a `FaultIo`).
pub fn gateway_with(engine_cfg: ExplorerConfig, sessions: SessionConfig) -> Arc<Gateway> {
    let engine = Arc::new(Explorer::with_config(catalog(), engine_cfg));
    Arc::new(Gateway::new(
        engine,
        GatewayConfig {
            sessions,
            ..GatewayConfig::default()
        },
    ))
}

/// A blocking keep-alive HTTP/1.1 client for tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Wrap an already-connected stream (for tests that pre-drip bytes
    /// onto the wire before speaking HTTP).
    pub fn from_stream(stream: TcpStream) -> Client {
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send raw bytes without framing (for garbage injection).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    /// One request/response exchange on the persistent connection.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).unwrap();
        self.writer.write_all(body).unwrap();
        self.writer.flush().unwrap();
        self.read_response().expect("server closed mid-response")
    }

    /// Read one response off the wire; `None` on EOF before a byte.
    pub fn read_response(&mut self) -> Option<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h).ok()?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().ok()?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some((status, String::from_utf8(body).ok()?))
    }
}

/// One-shot request on a fresh connection.
pub fn once(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    Client::connect(addr).request(method, path, body)
}

/// The scripted command bodies a "user" sends: slider sweeps, knob
/// turns, a drill-down and back. `variant` picks one of several distinct
/// scripts so concurrent sessions don't all follow the same path.
pub fn script(variant: usize) -> Vec<String> {
    let set_query = format!(r#"{{"cmd":"set_query","sql":"{SQL}"}}"#);
    let common: Vec<String> = vec![
        set_query,
        r#"{"cmd":"set_k","value":3}"#.into(),
        r#"{"cmd":"set_l","value":6}"#.into(),
    ];
    let tail: Vec<String> = match variant % 4 {
        0 => vec![
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
            r#"{"cmd":"set_d","value":1}"#.into(),
        ],
        1 => vec![
            r#"{"cmd":"set_d","value":1}"#.into(),
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_threshold","value":0}"#.into(),
        ],
        2 => vec![
            r#"{"cmd":"set_k","value":4}"#.into(),
            r#"{"cmd":"set_l","value":4}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
        ],
        _ => vec![
            r#"{"cmd":"set_threshold","value":1}"#.into(),
            r#"{"cmd":"set_k","value":2}"#.into(),
            r#"{"cmd":"set_threshold","value":0}"#.into(),
        ],
    };
    common.into_iter().chain(tail).collect()
}

/// Replay a script against a bare session opened through
/// [`qagview_interactive::Explorer::open_session`] on a dedicated engine,
/// returning the serialized view text of every response — the sequential
/// oracle the server must match byte for byte.
pub fn bare_replay(bodies: &[String]) -> Vec<String> {
    let engine = Arc::new(Explorer::new(catalog()));
    let mut session = engine
        .open_session(qagview_interactive::SessionSpec::default())
        .expect("open_session with an empty spec cannot fail");
    bodies
        .iter()
        .map(|body| {
            let cmd = qagview_serve::parse_command(body.as_bytes()).unwrap();
            let resp = session.apply(cmd).unwrap();
            qagview_serve::view_json(&resp).to_text()
        })
        .collect()
}

/// Extract the serialized `"view"` object out of a command-response body.
pub fn view_text(response_body: &str) -> String {
    let doc = qagview_common::json::parse(response_body).unwrap();
    doc.get("view").expect("response carries a view").to_text()
}

/// Extract the session id out of a create-response body.
pub fn session_id(response_body: &str) -> String {
    qagview_common::json::parse(response_body)
        .unwrap()
        .get("session")
        .and_then(|s| s.as_str().map(str::to_string))
        .expect("create response carries a session id")
}
