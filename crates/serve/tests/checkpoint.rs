//! Checkpoint round-trips: restart restore is bit-identical, eviction
//! under a tight resident cap is transparent, and write faults on the
//! checkpoint path degrade — they never corrupt a session or a durable
//! checkpoint.

mod common;

use common::{bare_replay, gateway_with, script, session_id, temp_dir, view_text};
use qagview_common::io::{FaultIo, FaultKind};
use qagview_common::wire::checksum64;
use qagview_interactive::ExplorerConfig;
use qagview_serve::{Gateway, SessionConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn sessions_with_dir(dir: &std::path::Path, max_resident: usize) -> SessionConfig {
    SessionConfig {
        max_resident,
        checkpoint_dir: Some(PathBuf::from(dir)),
        ..SessionConfig::default()
    }
}

/// Drive the gateway through the same raw-bytes path a socket would.
fn req(gw: &Gateway, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let resp = gw.handle_bytes(raw.as_bytes());
    let text = String::from_utf8(resp).unwrap();
    let status: u16 = text.split(' ').nth(1).unwrap().parse().unwrap();
    let body_at = text.find("\r\n\r\n").unwrap() + 4;
    (status, text[body_at..].to_string())
}

fn create(gw: &Gateway) -> String {
    let (status, body) = req(gw, "POST", "/api/session", "");
    assert_eq!(status, 200, "{body}");
    session_id(&body)
}

fn command(gw: &Gateway, sid: &str, body: &str) -> String {
    let (status, resp) = req(gw, "POST", &format!("/api/session/{sid}/command"), body);
    assert_eq!(status, 200, "{body} -> {resp}");
    resp
}

fn restored(response_body: &str) -> bool {
    qagview_common::json::parse(response_body)
        .unwrap()
        .path("provenance.restored")
        .and_then(qagview_common::json::Json::as_bool)
        .expect("provenance carries the restore marker")
}

#[test]
fn restart_restore_is_bit_identical() {
    let dir = temp_dir("restart");
    let gw1 = gateway_with(ExplorerConfig::default(), sessions_with_dir(&dir, 8));
    let sid = create(&gw1);
    for cmd in &script(0) {
        assert!(!restored(&command(&gw1, &sid, cmd)));
    }
    let (status, body) = req(&gw1, "POST", &format!("/api/session/{sid}/checkpoint"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"checkpointed\":true"));
    drop(gw1); // the process dies here

    // A new process: fresh gateway, fresh engine, same checkpoint dir.
    let gw2 = gateway_with(ExplorerConfig::default(), sessions_with_dir(&dir, 8));

    // Its freshly issued ids must not collide with the checkpointed one.
    let fresh = create(&gw2);
    assert_ne!(fresh, sid);

    // The next command restores transparently: provenance says so, and
    // the view is byte-identical to an uninterrupted sequential run.
    let next = r#"{"cmd":"set_k","value":2}"#;
    let body = command(&gw2, &sid, next);
    assert!(
        restored(&body),
        "restore must be visible in provenance: {body}"
    );
    let view = view_text(&body);
    let mut full = script(0);
    full.push(next.to_string());
    let oracle = bare_replay(&full);
    assert_eq!(view, *oracle.last().unwrap(), "restored view diverges");
    let digest = format!("{:016x}", checksum64(view.as_bytes()));
    assert!(body.contains(&digest), "digest mismatch after restore");

    // Once resident, the next command is an ordinary (non-restore) tick.
    let again = command(&gw2, &sid, r#"{"cmd":"set_k","value":3}"#);
    assert!(!restored(&again));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn eviction_under_a_one_session_cap_is_transparent() {
    let dir = temp_dir("evict");
    let gw = gateway_with(ExplorerConfig::default(), sessions_with_dir(&dir, 1));

    // Two sessions ping-pong over a single resident slot: every command
    // to the non-resident one evicts the other and restores from its
    // just-written checkpoint.
    let a = create(&gw);
    let b = create(&gw); // evicts a
    let script_a = script(0);
    let script_b = script(1);
    let mut views_a = Vec::new();
    let mut views_b = Vec::new();
    let mut restores = 0;
    for (cmd_a, cmd_b) in script_a.iter().zip(&script_b) {
        let resp = command(&gw, &a, cmd_a);
        restores += usize::from(restored(&resp));
        views_a.push(view_text(&resp));
        let resp = command(&gw, &b, cmd_b);
        restores += usize::from(restored(&resp));
        views_b.push(view_text(&resp));
    }
    assert_eq!(gw.sessions().resident(), 1, "the cap held throughout");
    assert!(restores >= 2, "the ping-pong must actually restore");
    assert!(
        gw.metrics()
            .sessions_evicted
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2,
        "evictions must be counted"
    );
    assert_eq!(views_a, bare_replay(&script_a), "session a diverged");
    assert_eq!(views_b, bare_replay(&script_b), "session b diverged");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_write_faults_degrade_never_corrupt() {
    let dir = temp_dir("faults");
    let fault = Arc::new(FaultIo::new());
    let engine_cfg = ExplorerConfig {
        store_io: Arc::clone(&fault) as _,
        ..ExplorerConfig::default()
    };
    let gw = gateway_with(engine_cfg, sessions_with_dir(&dir, 1));

    let a = create(&gw);
    let script_a = script(2);
    for cmd in &script_a {
        command(&gw, &a, cmd);
    }
    // A good durable checkpoint of a's state, written fault-free.
    let (status, _) = req(&gw, "POST", &format!("/api/session/{a}/checkpoint"), "");
    assert_eq!(status, 200);

    // Now every eviction attempt hits a write fault: admitting a second
    // session finds nothing evictable and is refused with a typed 429 —
    // and a is untouched.
    fault.schedule(fault.ops_seen(), FaultKind::Error);
    let (status, body) = req(&gw, "POST", "/api/session", "");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("session_limit"), "{body}");
    assert!(
        gw.metrics()
            .checkpoint_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    let next = r#"{"cmd":"set_k","value":2}"#;
    let resp = command(&gw, &a, next);
    assert!(!restored(&resp), "a must have stayed resident");
    let mut full = script_a.clone();
    full.push(next.to_string());
    assert_eq!(view_text(&resp), *bare_replay(&full).last().unwrap());

    // An explicit checkpoint that tears mid-write is a typed 500; the
    // session keeps serving and the older durable checkpoint survives
    // (the tear happened on the temp file, never the real one).
    fault.schedule(fault.ops_seen() + 1, FaultKind::TornWrite);
    let (status, body) = req(&gw, "POST", &format!("/api/session/{a}/checkpoint"), "");
    assert_eq!(status, 500, "{body}");
    command(&gw, &a, r#"{"cmd":"set_l","value":4}"#);
    drop(gw);

    // A clean process over the same dir restores from the good (pre-tear)
    // checkpoint, bit-identically.
    let gw2 = gateway_with(ExplorerConfig::default(), sessions_with_dir(&dir, 8));
    let resp = command(&gw2, &a, next);
    assert!(restored(&resp));
    assert_eq!(view_text(&resp), *bare_replay(&full).last().unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}
