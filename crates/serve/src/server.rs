//! The gateway (routing + dispatch) and the TCP server shell around it.
//!
//! [`Gateway`] is the protocol-agnostic core: it owns the shared
//! [`Explorer`], the [`SessionStore`], and the [`Metrics`], and maps one
//! [`Request`] to one [`Response`]. The TCP [`Server`] and the in-process
//! [`Gateway::handle_bytes`] entry point (used by the load generator's
//! latency baseline and the fuzz tests) drive the **same** parsing,
//! routing, and serialization code — the only difference over the wire is
//! the socket.
//!
//! # Endpoints
//!
//! | Method · path                         | Does                                        |
//! |---------------------------------------|---------------------------------------------|
//! | `POST /api/session`                   | create a session (optional `budget_bytes`)  |
//! | `POST /api/session/{id}/command`      | apply one command, returns view + provenance|
//! | `GET /api/session/{id}`               | session stats (resident or checkpointed)    |
//! | `POST /api/session/{id}/checkpoint`   | checkpoint now (session stays resident)     |
//! | `DELETE /api/session/{id}`            | drop the session and its checkpoint         |
//! | `GET /api/metrics`                    | gateway counters + engine cache stats       |
//! | `GET /api/healthz`                    | liveness probe                              |

use crate::api::{self, ServeError};
use crate::http::{read_request, write_response, ReadOutcome, Request, Response};
use crate::metrics::Metrics;
use crate::sessions::{SessionConfig, SessionStore};
use qagview_common::json::Json;
use qagview_interactive::{Explorer, ExplorerStats};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Session-store knobs (shards, resident cap, checkpoint directory).
    pub sessions: SessionConfig,
    /// Cap on a request body's declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            sessions: SessionConfig::default(),
            max_body_bytes: 1 << 20,
        }
    }
}

/// The routing core shared by the TCP server and in-process callers.
#[derive(Debug)]
pub struct Gateway {
    engine: Arc<Explorer>,
    sessions: SessionStore,
    metrics: Arc<Metrics>,
    cfg: GatewayConfig,
}

impl Gateway {
    /// Build a gateway over a shared engine (warm-start the engine from a
    /// `.qag` store directory by configuring
    /// [`ExplorerConfig::store_dir`](qagview_interactive::ExplorerConfig)
    /// before constructing it).
    pub fn new(engine: Arc<Explorer>, cfg: GatewayConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        let sessions = SessionStore::new(
            Arc::clone(&engine),
            cfg.sessions.clone(),
            Arc::clone(&metrics),
        );
        Gateway {
            engine,
            sessions,
            metrics,
            cfg,
        }
    }

    /// The gateway's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The session store (exposed for tests and the load generator).
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// The configured body cap.
    pub fn max_body_bytes(&self) -> usize {
        self.cfg.max_body_bytes
    }

    /// Serve one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        Metrics::bump(&self.metrics.requests);
        let resp = match self.route(req) {
            Ok(body) => Response::json(200, body.to_text().into_bytes()),
            Err(e) => Response::json(e.status(), e.to_json().to_text().into_bytes()),
        };
        self.metrics.count_status(resp.status);
        resp
    }

    /// Parse and serve one raw HTTP request from bytes, returning the raw
    /// HTTP response — the in-process twin of one TCP exchange. Framing
    /// errors produce the same 4xx/5xx bytes the server would send.
    pub fn handle_bytes(&self, raw: &[u8]) -> Vec<u8> {
        let mut cursor = std::io::Cursor::new(raw);
        let outcome = read_request(&mut cursor, self.cfg.max_body_bytes)
            .expect("in-memory reads cannot fail");
        let resp = match outcome {
            ReadOutcome::Eof => return Vec::new(),
            ReadOutcome::Error(e) => self.protocol_error_response(e),
            ReadOutcome::Request(req) => self.handle(&req),
        };
        let mut out = Vec::with_capacity(resp.body.len() + 128);
        write_response(&mut out, &resp).expect("in-memory writes cannot fail");
        out
    }

    fn protocol_error_response(&self, e: crate::http::HttpError) -> Response {
        Metrics::bump(&self.metrics.protocol_errors);
        let err = ServeError::Protocol(e);
        let resp = Response::json(err.status(), err.to_json().to_text().into_bytes()).closing();
        self.metrics.count_status(resp.status);
        resp
    }

    fn route(&self, req: &Request) -> Result<Json, ServeError> {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["api", "healthz"]) => Ok(Json::obj([("ok", Json::from(true))])),
            ("GET", ["api", "metrics"]) => Ok(self.metrics_json()),
            ("POST", ["api", "session"]) => self.create_session(&req.body),
            (method, ["api", "session", id]) => {
                let id = parse_id(id)?;
                match method {
                    "GET" => self.session_info(id),
                    "DELETE" => {
                        self.sessions.delete(id)?;
                        Ok(Json::obj([
                            ("session", Json::from(hex(id))),
                            ("deleted", Json::from(true)),
                        ]))
                    }
                    _ => Err(ServeError::MethodNotAllowed(format!(
                        "{method} is not served on /api/session/{{id}}"
                    ))),
                }
            }
            ("POST", ["api", "session", id, "command"]) => {
                let id = parse_id(id)?;
                let cmd = api::parse_command(&req.body)?;
                let outcome = self.sessions.command(id, cmd)?;
                Ok(api::response_json(
                    &hex(id),
                    outcome.seq,
                    outcome.restored,
                    &outcome.response,
                ))
            }
            ("POST", ["api", "session", id, "checkpoint"]) => {
                let id = parse_id(id)?;
                self.sessions.checkpoint(id)?;
                Ok(Json::obj([
                    ("session", Json::from(hex(id))),
                    ("checkpointed", Json::from(true)),
                ]))
            }
            (method, ["api", "session"]) => Err(ServeError::MethodNotAllowed(format!(
                "{method} is not served on /api/session"
            ))),
            _ => Err(ServeError::UnknownRoute(req.path.clone())),
        }
    }

    fn create_session(&self, body: &[u8]) -> Result<Json, ServeError> {
        let budget = if body.is_empty() {
            None
        } else {
            let text = std::str::from_utf8(body)
                .map_err(|_| ServeError::BadJson("body is not UTF-8".into()))?;
            let doc = qagview_common::json::parse(text)
                .map_err(|e| ServeError::BadJson(e.to_string()))?;
            match doc.get("budget_bytes") {
                None | Some(Json::Null) => None,
                Some(v) => Some(Some(v.as_u64().ok_or_else(|| {
                    ServeError::BadCommand("\"budget_bytes\" must be a non-negative integer".into())
                })?)),
            }
        };
        let id = self.sessions.create(budget)?;
        Ok(Json::obj([("session", Json::from(hex(id)))]))
    }

    fn session_info(&self, id: u64) -> Result<Json, ServeError> {
        let info = self.sessions.info(id)?;
        Ok(Json::obj([
            ("session", Json::from(hex(id))),
            ("resident", Json::from(info.resident)),
            ("seq", info.seq.map_or(Json::Null, Json::from)),
            (
                "state",
                info.state.as_ref().map_or(Json::Null, |s| {
                    Json::obj([
                        ("sql", Json::from(s.sql.as_str())),
                        ("k", Json::from(s.k)),
                        ("l", Json::from(s.l)),
                        ("d", Json::from(s.d)),
                    ])
                }),
            ),
            ("retained_bytes", Json::from(info.retained_bytes)),
            (
                "budget_bytes",
                info.budget_bytes.map_or(Json::Null, Json::from),
            ),
        ]))
    }

    fn metrics_json(&self) -> Json {
        let mut doc = self.metrics.to_json();
        doc.set("resident_sessions", Json::from(self.sessions.resident()));
        doc.set("engine", engine_stats_json(&self.engine.stats()));
        doc
    }
}

fn hex(id: u64) -> String {
    format!("{id:016x}")
}

fn parse_id(s: &str) -> Result<u64, ServeError> {
    if s.is_empty() || s.len() > 16 {
        return Err(ServeError::UnknownSession(s.to_string()));
    }
    u64::from_str_radix(s, 16).map_err(|_| ServeError::UnknownSession(s.to_string()))
}

fn engine_stats_json(stats: &ExplorerStats) -> Json {
    let layer = |l: &qagview_interactive::LayerStats| {
        Json::obj([
            ("hits", Json::from(l.hits)),
            ("misses", Json::from(l.misses)),
            ("evictions", Json::from(l.evictions)),
            ("entries", Json::from(l.entries)),
        ])
    };
    Json::obj([
        ("group_phase", layer(&stats.group_phase)),
        ("answers", layer(&stats.answers)),
        ("planes", layer(&stats.planes)),
        ("summarizers", layer(&stats.summarizers)),
        (
            "store",
            Json::obj([
                ("loads", Json::from(stats.store.loads)),
                ("probe_misses", Json::from(stats.store.probe_misses)),
                ("writes", Json::from(stats.store.writes)),
                ("write_errors", Json::from(stats.store.write_errors)),
                ("retries", Json::from(stats.store.retries)),
                ("gc_evictions", Json::from(stats.store.gc_evictions)),
                ("gc_bytes_freed", Json::from(stats.store.gc_bytes_freed)),
            ]),
        ),
        ("poison_recoveries", Json::from(stats.poison.total())),
    ])
}

/// TCP shell knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; excess connections get an immediate
    /// 503 and are closed.
    pub max_connections: usize,
    /// Per-read socket timeout; an idle keep-alive connection is dropped
    /// after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A running TCP server: one accept thread, one thread per connection.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `gateway`.
    pub fn start(
        gateway: Arc<Gateway>,
        bind: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = std::thread::Builder::new()
            .name("qagview-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if active.load(Ordering::Acquire) >= cfg.max_connections {
                        refuse_connection(&gateway, stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::AcqRel);
                    let gw = Arc::clone(&gateway);
                    let slot = Arc::clone(&active);
                    let conn_cfg = cfg.clone();
                    let spawned = std::thread::Builder::new()
                        .name("qagview-serve-conn".into())
                        .spawn(move || {
                            serve_connection(&gw, stream, &conn_cfg);
                            slot.fetch_sub(1, Ordering::AcqRel);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. In-flight connections
    /// finish their current exchange and time out on the next read.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn refuse_connection(gateway: &Gateway, mut stream: TcpStream) {
    Metrics::bump(&gateway.metrics.refused_connections);
    let err = ServeError::Overloaded("connection cap reached; retry".into());
    let resp = Response::json(err.status(), err.to_json().to_text().into_bytes()).closing();
    gateway.metrics.count_status(resp.status);
    let _ = write_response(&mut stream, &resp);
}

fn serve_connection(gateway: &Gateway, stream: TcpStream, cfg: &ServerConfig) {
    // Nagle off: every exchange here is one small write the client is
    // actively waiting on; coalescing would serialize ticks at ~40 ms.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, gateway.max_body_bytes()) {
            Err(_) | Ok(ReadOutcome::Eof) => break, // hangup / timeout
            Ok(ReadOutcome::Error(e)) => {
                // Answer, then close: after a framing error there is no
                // reliable next-request boundary in the stream.
                let resp = gateway.protocol_error_response(e);
                let _ = write_response(&mut writer, &resp);
                break;
            }
            Ok(ReadOutcome::Request(req)) => {
                let mut resp = gateway.handle(&req);
                if req.wants_close() {
                    resp.close = true;
                }
                if write_response(&mut writer, &resp).is_err() || resp.close {
                    break;
                }
            }
        }
    }
    let _ = writer.flush();
}
