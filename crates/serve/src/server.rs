//! The gateway (routing + dispatch) and the TCP server shell around it.
//!
//! [`Gateway`] is the protocol-agnostic core: it owns the shared
//! [`Explorer`], the [`SessionStore`], and the [`Metrics`], and maps one
//! [`Request`] to one [`Response`]. The TCP [`Server`] and the in-process
//! [`Gateway::handle_bytes`] entry point (used by the load generator's
//! latency baseline and the fuzz tests) drive the **same** parsing,
//! routing, and serialization code — the only difference over the wire is
//! the socket.
//!
//! # Endpoints
//!
//! | Method · path                         | Does                                        |
//! |---------------------------------------|---------------------------------------------|
//! | `POST /api/session`                   | create a session (optional `budget_bytes`, `fidelity`) |
//! | `POST /api/session/{id}/command`      | apply one command, returns view + provenance|
//! | `GET /api/session/{id}`               | session stats (resident or checkpointed)    |
//! | `POST /api/session/{id}/checkpoint`   | checkpoint now (session stays resident)     |
//! | `DELETE /api/session/{id}`            | drop the session and its checkpoint         |
//! | `GET /api/metrics`                    | gateway counters + engine cache stats       |
//! | `GET /healthz` (or `/api/healthz`)    | readiness: 200 serving / 503 draining       |
//!
//! # Deadlines and hostile clients
//!
//! Every connection runs under [`ServerConfig`] budgets. An idle
//! keep-alive connection is closed silently at
//! [`ServerConfig::read_timeout`]; once the first byte of a request
//! arrives, the whole request — parse, session-lock wait, command
//! execution — must finish within [`ServerConfig::request_deadline`]. A
//! mid-request read timeout (slow-loris) is answered with a typed 408 and
//! the connection closes; a budget that expires before the command
//! executes is a typed 503 `deadline_exceeded` with `Retry-After` that
//! leaves session state untouched. Response writes are bounded by
//! [`ServerConfig::write_timeout`] and buffered into a single frame, so a
//! slow reader costs one bounded write, never a wedged thread.
//!
//! # Graceful drain
//!
//! [`Server::drain`] (also run by [`Server::shutdown`] and on drop) stops
//! accepting, refuses new mutations with a typed 503 `draining`, closes
//! idle connections immediately, gives in-flight requests until
//! [`ServerConfig::drain_deadline`] to finish, then checkpoints **every**
//! resident session through the engine's own `StoreIo`. A server
//! restarted over the same directories restores each of them
//! bit-identically. [`Server::kill`] is the non-graceful twin (the crash
//! the chaos harness injects): connections die, nothing is checkpointed.

use crate::api::{self, ServeError};
use crate::http::{read_request, write_response, ReadOutcome, Request, Response};
use crate::metrics::Metrics;
use crate::net::{Deadline, FaultStream, NetScript};
use crate::sessions::{DrainOutcome, SessionConfig, SessionStore};
use qagview_common::json::Json;
use qagview_interactive::{Explorer, ExplorerStats, SessionSpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Session-store knobs (shards, resident cap, checkpoint directory).
    pub sessions: SessionConfig,
    /// Cap on a request body's declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            sessions: SessionConfig::default(),
            max_body_bytes: 1 << 20,
        }
    }
}

/// The routing core shared by the TCP server and in-process callers.
#[derive(Debug)]
pub struct Gateway {
    engine: Arc<Explorer>,
    sessions: SessionStore,
    metrics: Arc<Metrics>,
    cfg: GatewayConfig,
    draining: AtomicBool,
}

impl Gateway {
    /// Build a gateway over a shared engine (warm-start the engine from a
    /// `.qag` store directory by configuring
    /// [`ExplorerConfig::store_dir`](qagview_interactive::ExplorerConfig)
    /// before constructing it).
    pub fn new(engine: Arc<Explorer>, cfg: GatewayConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        let sessions = SessionStore::new(
            Arc::clone(&engine),
            cfg.sessions.clone(),
            Arc::clone(&metrics),
        );
        Gateway {
            engine,
            sessions,
            metrics,
            cfg,
            draining: AtomicBool::new(false),
        }
    }

    /// The gateway's metrics counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The session store (exposed for tests and the load generator).
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// The configured body cap.
    pub fn max_body_bytes(&self) -> usize {
        self.cfg.max_body_bytes
    }

    /// Enter draining: new mutations are refused with a typed 503,
    /// `/healthz` flips to 503 so load balancers rotate, and read-only
    /// endpoints keep answering. Idempotent.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            Metrics::bump(&self.metrics.drains);
        }
    }

    /// Whether [`Gateway::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Checkpoint every resident session (the drain sweep); see
    /// [`SessionStore::drain_to_checkpoints`].
    pub fn drain_sessions(&self, deadline: Deadline) -> DrainOutcome {
        self.sessions.drain_to_checkpoints(deadline)
    }

    /// Serve one parsed request with no deadline budget (in-process
    /// callers; the TCP loop uses [`Gateway::handle_deadline`]).
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_deadline(req, None)
    }

    /// Serve one parsed request under an optional deadline budget. The
    /// budget covers session-lock wait and command admission; a refusal
    /// is typed and never mutates session state.
    pub fn handle_deadline(&self, req: &Request, deadline: Option<Deadline>) -> Response {
        Metrics::bump(&self.metrics.requests);
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        // Health is answered before routing so its status can reflect the
        // serving/draining state instead of the Ok-is-200 convention.
        if req.method == "GET" && matches!(segments.as_slice(), ["healthz"] | ["api", "healthz"]) {
            let resp = self.healthz_response();
            self.metrics.count_status(resp.status);
            return resp;
        }
        let resp = match self.route(req, deadline) {
            Ok(body) => Response::json(200, body.to_text().into_bytes()),
            Err(e) => {
                match e {
                    ServeError::DeadlineExceeded { .. } => {
                        Metrics::bump(&self.metrics.deadline_exceeded);
                    }
                    ServeError::Draining => Metrics::bump(&self.metrics.refused_draining),
                    _ => {}
                }
                Response::json(e.status(), e.to_json().to_text().into_bytes())
                    .with_retry_after(e.retry_after())
            }
        };
        self.metrics.count_status(resp.status);
        resp
    }

    /// Parse and serve one raw HTTP request from bytes, returning the raw
    /// HTTP response — the in-process twin of one TCP exchange. Framing
    /// errors produce the same 4xx/5xx bytes the server would send.
    pub fn handle_bytes(&self, raw: &[u8]) -> Vec<u8> {
        let mut cursor = std::io::Cursor::new(raw);
        let outcome = read_request(&mut cursor, self.cfg.max_body_bytes)
            .expect("in-memory reads cannot fail");
        let resp = match outcome {
            ReadOutcome::Eof => return Vec::new(),
            ReadOutcome::Error(e) => self.protocol_error_response(e),
            ReadOutcome::Request(req) => self.handle(&req),
        };
        let mut out = Vec::with_capacity(resp.body.len() + 128);
        write_response(&mut out, &resp).expect("in-memory writes cannot fail");
        out
    }

    fn protocol_error_response(&self, e: crate::http::HttpError) -> Response {
        Metrics::bump(&self.metrics.protocol_errors);
        let err = ServeError::Protocol(e);
        let resp = Response::json(err.status(), err.to_json().to_text().into_bytes()).closing();
        self.metrics.count_status(resp.status);
        resp
    }

    /// The typed 408 a mid-request read timeout answers with.
    fn request_timeout_response(&self) -> Response {
        Metrics::bump(&self.metrics.request_timeouts);
        let err = ServeError::RequestTimeout;
        let resp = Response::json(err.status(), err.to_json().to_text().into_bytes()).closing();
        self.metrics.count_status(resp.status);
        resp
    }

    /// The readiness body: serving/draining state, resident sessions, and
    /// a metrics snapshot. 503 while draining so load balancers rotate.
    fn healthz_response(&self) -> Response {
        let draining = self.is_draining();
        let body = Json::obj([
            ("ok", Json::from(!draining)),
            (
                "state",
                Json::from(if draining { "draining" } else { "serving" }),
            ),
            ("resident_sessions", Json::from(self.sessions.resident())),
            ("metrics", self.metrics.to_json()),
        ]);
        let status = if draining { 503 } else { 200 };
        Response::json(status, body.to_text().into_bytes()).with_retry_after(draining.then_some(2))
    }

    fn route(&self, req: &Request, deadline: Option<Deadline>) -> Result<Json, ServeError> {
        // While draining, reads (stats, metrics) keep answering but every
        // mutation is refused before it touches a session.
        if self.is_draining() && req.method != "GET" {
            return Err(ServeError::Draining);
        }
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["api", "metrics"]) => Ok(self.metrics_json()),
            ("POST", ["api", "session"]) => self.create_session(&req.body),
            (method, ["api", "session", id]) => {
                let id = parse_id(id)?;
                match method {
                    "GET" => self.session_info(id),
                    "DELETE" => {
                        self.sessions.delete(id)?;
                        Ok(Json::obj([
                            ("session", Json::from(hex(id))),
                            ("deleted", Json::from(true)),
                        ]))
                    }
                    _ => Err(ServeError::MethodNotAllowed(format!(
                        "{method} is not served on /api/session/{{id}}"
                    ))),
                }
            }
            ("POST", ["api", "session", id, "command"]) => {
                let id = parse_id(id)?;
                let cmd = api::parse_command(&req.body)?;
                let outcome = self.sessions.command_deadline(id, cmd, deadline)?;
                Ok(api::response_json(
                    &hex(id),
                    outcome.seq,
                    outcome.restored,
                    &outcome.response,
                ))
            }
            ("POST", ["api", "session", id, "checkpoint"]) => {
                let id = parse_id(id)?;
                self.sessions.checkpoint(id)?;
                Ok(Json::obj([
                    ("session", Json::from(hex(id))),
                    ("checkpointed", Json::from(true)),
                ]))
            }
            (method, ["api", "session"]) => Err(ServeError::MethodNotAllowed(format!(
                "{method} is not served on /api/session"
            ))),
            _ => Err(ServeError::UnknownRoute(req.path.clone())),
        }
    }

    fn create_session(&self, body: &[u8]) -> Result<Json, ServeError> {
        let mut spec = SessionSpec::default();
        if !body.is_empty() {
            let text = std::str::from_utf8(body)
                .map_err(|_| ServeError::BadJson("body is not UTF-8".into()))?;
            let doc = qagview_common::json::parse(text)
                .map_err(|e| ServeError::BadJson(e.to_string()))?;
            spec.budget_bytes = match doc.get("budget_bytes") {
                None | Some(Json::Null) => None,
                Some(v) => Some(Some(v.as_u64().ok_or_else(|| {
                    ServeError::BadCommand("\"budget_bytes\" must be a non-negative integer".into())
                })?)),
            };
            // v2 field; absent (a v1 client) means exact — the v1 behavior.
            if let Some(v) = doc.get("fidelity") {
                let mode = v.as_str().ok_or_else(|| {
                    ServeError::BadCommand("\"fidelity\" must be a string".into())
                })?;
                spec.fidelity = crate::api::parse_fidelity_mode(mode)?;
            }
        }
        let id = self.sessions.create(spec)?;
        Ok(Json::obj([("session", Json::from(hex(id)))]))
    }

    fn session_info(&self, id: u64) -> Result<Json, ServeError> {
        let info = self.sessions.info(id)?;
        Ok(Json::obj([
            ("session", Json::from(hex(id))),
            ("resident", Json::from(info.resident)),
            ("seq", info.seq.map_or(Json::Null, Json::from)),
            (
                "state",
                info.state.as_ref().map_or(Json::Null, |s| {
                    Json::obj([
                        ("sql", Json::from(s.sql.as_str())),
                        ("k", Json::from(s.k)),
                        ("l", Json::from(s.l)),
                        ("d", Json::from(s.d)),
                    ])
                }),
            ),
            ("retained_bytes", Json::from(info.retained_bytes)),
            (
                "budget_bytes",
                info.budget_bytes.map_or(Json::Null, Json::from),
            ),
        ]))
    }

    fn metrics_json(&self) -> Json {
        let mut doc = self.metrics.to_json();
        doc.set("resident_sessions", Json::from(self.sessions.resident()));
        doc.set("engine", engine_stats_json(&self.engine.stats()));
        doc
    }
}

fn hex(id: u64) -> String {
    format!("{id:016x}")
}

fn parse_id(s: &str) -> Result<u64, ServeError> {
    if s.is_empty() || s.len() > 16 {
        return Err(ServeError::UnknownSession(s.to_string()));
    }
    u64::from_str_radix(s, 16).map_err(|_| ServeError::UnknownSession(s.to_string()))
}

fn engine_stats_json(stats: &ExplorerStats) -> Json {
    let layer = |l: &qagview_interactive::LayerStats| {
        Json::obj([
            ("hits", Json::from(l.hits)),
            ("misses", Json::from(l.misses)),
            ("evictions", Json::from(l.evictions)),
            ("entries", Json::from(l.entries)),
        ])
    };
    Json::obj([
        ("group_phase", layer(&stats.group_phase)),
        ("answers", layer(&stats.answers)),
        ("planes", layer(&stats.planes)),
        ("summarizers", layer(&stats.summarizers)),
        (
            "store",
            Json::obj([
                ("loads", Json::from(stats.store.loads)),
                ("probe_misses", Json::from(stats.store.probe_misses)),
                ("writes", Json::from(stats.store.writes)),
                ("write_errors", Json::from(stats.store.write_errors)),
                ("retries", Json::from(stats.store.retries)),
                ("gc_evictions", Json::from(stats.store.gc_evictions)),
                ("gc_bytes_freed", Json::from(stats.store.gc_bytes_freed)),
            ]),
        ),
        ("poison_recoveries", Json::from(stats.poison.total())),
    ])
}

/// TCP shell knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; excess connections get an immediate
    /// 503 and are closed.
    pub max_connections: usize,
    /// Idle keep-alive timeout: a connection with **no** request byte in
    /// flight is closed silently after this long (also the per-read
    /// stall bound mid-request, whichever of the two is tighter).
    pub read_timeout: Duration,
    /// Per-request budget, armed when the first byte of a request
    /// arrives: parse, session-lock wait, and command execution must all
    /// finish inside it (408 mid-parse, 503 `deadline_exceeded` later).
    pub request_deadline: Duration,
    /// Bound on writing one response; a slower reader loses the
    /// connection (the response is one bounded buffered frame).
    pub write_timeout: Duration,
    /// How long a graceful drain waits for in-flight requests (and then
    /// again for the checkpoint sweep).
    pub drain_deadline: Duration,
    /// Deterministic network-fault script; `None` (production) serves
    /// bare sockets, `Some` wraps every connection in a
    /// [`FaultStream`] so chaos tests drive the same code path.
    pub net_script: Option<Arc<NetScript>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            read_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            net_script: None,
        }
    }
}

/// What [`Server::drain`] accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Resident sessions checkpointed to disk by the sweep.
    pub checkpointed: usize,
    /// Sessions the sweep could not checkpoint (left resident, not lost).
    pub checkpoint_failures: usize,
    /// Connections force-closed at the drain deadline with a request
    /// still in flight.
    pub forced_connections: usize,
}

/// One registered connection: a duplicate handle for force-close plus the
/// in-flight marker the drain loop consults.
#[derive(Debug)]
struct ConnHandle {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

type ConnRegistry = Arc<Mutex<HashMap<u64, ConnHandle>>>;

/// A running TCP server: one accept thread, one thread per connection.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    gateway: Arc<Gateway>,
    cfg: ServerConfig,
    conns: ConnRegistry,
    drained: bool,
}

impl Server {
    /// Bind `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `gateway`.
    pub fn start(
        gateway: Arc<Gateway>,
        bind: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let conns: ConnRegistry = Arc::default();
        let accept_conns = Arc::clone(&conns);
        let accept_gateway = Arc::clone(&gateway);
        let accept_cfg = cfg.clone();
        let accept_thread = std::thread::Builder::new()
            .name("qagview-serve-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&accept_conns);
                    if registry.lock().expect("conn registry").len() >= accept_cfg.max_connections {
                        refuse_connection(&accept_gateway, stream);
                        continue;
                    }
                    // Register a duplicate handle so a drain can see (and
                    // force-close) this connection; without one the
                    // connection cannot be managed, so it is dropped.
                    let busy = Arc::new(AtomicBool::new(false));
                    let Ok(dup) = stream.try_clone() else {
                        continue;
                    };
                    let id = next_id;
                    next_id += 1;
                    registry.lock().expect("conn registry").insert(
                        id,
                        ConnHandle {
                            stream: dup,
                            busy: Arc::clone(&busy),
                        },
                    );
                    let gw = Arc::clone(&accept_gateway);
                    let conn_cfg = accept_cfg.clone();
                    let spawned = std::thread::Builder::new()
                        .name("qagview-serve-conn".into())
                        .spawn(move || {
                            serve_connection(&gw, stream, &conn_cfg, &busy);
                            registry.lock().expect("conn registry").remove(&id);
                        });
                    if spawned.is_err() {
                        accept_conns.lock().expect("conn registry").remove(&id);
                    }
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            gateway,
            cfg,
            conns,
            drained: false,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered (serving or between requests).
    pub fn active_connections(&self) -> usize {
        self.conns.lock().expect("conn registry").len()
    }

    /// Gracefully drain and stop: refuse new work, close idle
    /// connections at once, give in-flight requests until the drain
    /// deadline, then checkpoint every resident session. Idempotent —
    /// later calls (including the drop hook) return an empty report.
    pub fn drain(&mut self) -> DrainReport {
        if self.drained {
            return DrainReport::default();
        }
        self.drained = true;
        self.gateway.begin_drain();
        self.stop_accepting();
        let deadline = Deadline::after(self.cfg.drain_deadline);
        let mut forced = 0usize;
        loop {
            {
                let conns = self.conns.lock().expect("conn registry");
                if conns.is_empty() {
                    break;
                }
                // Idle connections close now; busy ones get the deadline.
                for h in conns.values() {
                    if !h.busy.load(Ordering::Acquire) {
                        let _ = h.stream.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
            if deadline.expired() {
                let conns = self.conns.lock().expect("conn registry");
                forced = conns.len();
                for h in conns.values() {
                    let _ = h.stream.shutdown(std::net::Shutdown::Both);
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Give force-closed threads a moment to unwind off their sockets
        // (and release their session locks) before the checkpoint sweep.
        let grace = Deadline::after(Duration::from_millis(250));
        while !self.conns.lock().expect("conn registry").is_empty() && !grace.expired() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let swept = self
            .gateway
            .drain_sessions(Deadline::after(self.cfg.drain_deadline));
        DrainReport {
            checkpointed: swept.checkpointed,
            checkpoint_failures: swept.failures,
            forced_connections: forced,
        }
    }

    /// Stop the server (graceful): runs a full [`Server::drain`].
    pub fn shutdown(&mut self) {
        let _ = self.drain();
    }

    /// Kill the server abruptly — the process-crash analogue the chaos
    /// harness drives. Connections are severed mid-whatever and **no**
    /// session is checkpointed; only checkpoints already on disk survive
    /// into a restart.
    pub fn kill(&mut self) {
        self.drained = true;
        self.stop_accepting();
        let conns = self.conns.lock().expect("conn registry");
        for h in conns.values() {
            let _ = h.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn stop_accepting(&mut self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn refuse_connection(gateway: &Gateway, mut stream: TcpStream) {
    Metrics::bump(&gateway.metrics.refused_connections);
    let err = ServeError::Overloaded("connection cap reached; retry".into());
    let resp = Response::json(err.status(), err.to_json().to_text().into_bytes())
        .closing()
        .with_retry_after(err.retry_after());
    gateway.metrics.count_status(resp.status);
    let _ = write_response(&mut stream, &resp);
}

fn serve_connection(gateway: &Gateway, stream: TcpStream, cfg: &ServerConfig, busy: &AtomicBool) {
    // Nagle off: every exchange here is one small write the client is
    // actively waiting on; coalescing would serialize ticks at ~40 ms.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    // `ctrl` re-arms the read timeout per fill; try_clone'd streams share
    // one socket, so arming either half arms them all.
    let Ok(ctrl) = stream.try_clone() else {
        return;
    };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    match &cfg.net_script {
        Some(script) => drive_connection(
            gateway,
            FaultStream::new(read_half, Arc::clone(script)),
            FaultStream::new(stream, Arc::clone(script)),
            ctrl,
            cfg,
            busy,
        ),
        None => drive_connection(gateway, read_half, stream, ctrl, cfg, busy),
    }
}

fn drive_connection<R: Read, W: Write>(
    gateway: &Gateway,
    read_half: R,
    mut writer: W,
    ctrl: TcpStream,
    cfg: &ServerConfig,
    busy: &AtomicBool,
) {
    let mut reader = ConnReader::new(read_half, ctrl, cfg.read_timeout, cfg.request_deadline);
    loop {
        reader.begin_request();
        busy.store(false, Ordering::Release);
        let outcome = read_request(&mut reader, gateway.max_body_bytes());
        busy.store(true, Ordering::Release);
        match outcome {
            Err(e) => {
                match e.kind() {
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                        if reader.mid_request() {
                            // The client started a request and stalled —
                            // slow-loris or a lost peer: typed 408, close.
                            let resp = gateway.request_timeout_response();
                            let _ = write_response(&mut writer, &resp);
                        } else {
                            // Idle keep-alive expiry: silent close.
                            Metrics::bump(&gateway.metrics.idle_closes);
                        }
                    }
                    _ => Metrics::bump(&gateway.metrics.net_errors),
                }
                break;
            }
            Ok(ReadOutcome::Eof) => break, // clean hangup between requests
            Ok(ReadOutcome::Error(e)) => {
                // Answer, then close: after a framing error there is no
                // reliable next-request boundary in the stream.
                let resp = gateway.protocol_error_response(e);
                let _ = write_response(&mut writer, &resp);
                break;
            }
            Ok(ReadOutcome::Request(req)) => {
                let mut resp = gateway.handle_deadline(&req, reader.deadline());
                if req.wants_close() || gateway.is_draining() {
                    resp.close = true;
                }
                if let Err(e) = write_response(&mut writer, &resp) {
                    match e.kind() {
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                            Metrics::bump(&gateway.metrics.write_timeouts);
                        }
                        _ => Metrics::bump(&gateway.metrics.net_errors),
                    }
                    break;
                }
                if resp.close {
                    break;
                }
            }
        }
    }
    let _ = writer.flush();
}

/// The connection's buffered reader, tracking request progress so the
/// loop can tell an idle keep-alive timeout from a mid-request stall,
/// and re-arming the socket read timeout against the per-request
/// deadline once the first byte of a request has arrived.
struct ConnReader<R: Read> {
    inner: BufReader<R>,
    ctrl: TcpStream,
    idle_timeout: Duration,
    request_budget: Duration,
    deadline: Option<Deadline>,
    consumed: u64,
}

impl<R: Read> ConnReader<R> {
    fn new(
        read_half: R,
        ctrl: TcpStream,
        idle_timeout: Duration,
        request_budget: Duration,
    ) -> Self {
        ConnReader {
            inner: BufReader::new(read_half),
            ctrl,
            idle_timeout,
            request_budget,
            deadline: None,
            consumed: 0,
        }
    }

    /// Reset per-request state; the deadline re-arms on the next byte.
    fn begin_request(&mut self) {
        self.deadline = None;
        self.consumed = 0;
    }

    /// Whether any byte of the current request has been consumed.
    fn mid_request(&self) -> bool {
        self.consumed > 0
    }

    /// The current request's deadline (armed at its first byte).
    fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }
}

impl<R: Read> Read for ConnReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: Read> BufRead for ConnReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.inner.buffer().is_empty() {
            // About to touch the socket: arm its timeout with whatever is
            // tighter — the idle bound or the request's remaining budget.
            let timeout = match &self.deadline {
                None => self.idle_timeout,
                Some(d) => match d.remaining() {
                    None => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request deadline exhausted",
                        ))
                    }
                    Some(rem) => rem.min(self.idle_timeout).max(Duration::from_millis(1)),
                },
            };
            let _ = self.ctrl.set_read_timeout(Some(timeout));
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        if amt > 0 {
            self.consumed += amt as u64;
            if self.deadline.is_none() {
                self.deadline = Some(Deadline::after(self.request_budget));
            }
        }
        self.inner.consume(amt);
    }
}
