//! The serving layer: a multi-threaded session server over the owned
//! [`Explorer`](qagview_interactive::Explorer) engine.
//!
//! The paper's premise is *interactive* exploration — every slider or
//! knob tick in QAGView is a user-facing round-trip — and everything
//! below this crate is already built for it: the engine is `Send + Sync`
//! with bounded shared caches, warm-starts from a `.qag` store, carries
//! per-session memory budgets, and degrades typed-and-provenanced under
//! faults. This crate is the missing shell that turns that engine into a
//! service:
//!
//! * [`http`] — a minimal, strict, property-tested HTTP/1.1 framing
//!   layer over `std::net` (the build box is offline: no tokio/hyper);
//! * [`api`] — the JSON command/response vocabulary, the deterministic
//!   view serialization whose bytes the correctness tests compare, and
//!   the typed refusal model ([`ServeError`]) where every failure maps
//!   to one status + machine-checkable kind and **never corrupts
//!   session state**;
//! * [`sessions`] — the sharded [`SessionStore`]: id → live
//!   [`ExploreSession`](qagview_interactive::ExploreSession) behind
//!   per-session locks, a resident cap with LRU eviction to
//!   checkpoints, and transparent restore (including across process
//!   restarts) via [`qagview_interactive::SessionCheckpoint`];
//! * [`server`] — the [`Gateway`] routing core shared by TCP and
//!   in-process callers, and the thread-per-connection [`Server`] with
//!   a connection cap, per-request deadline budgets, and graceful
//!   drain-to-checkpoint shutdown;
//! * [`net`] — deterministic network fault injection ([`NetScript`] +
//!   [`FaultStream`]) and the [`Deadline`] budget type, mirroring the
//!   engine's `FaultIo` pattern at the connection layer;
//! * [`metrics`] — atomic counters behind `GET /api/metrics`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod http;
pub mod metrics;
pub mod net;
pub mod server;
pub mod sessions;

pub use api::{parse_command, response_json, view_digest, view_json, ServeError};
pub use http::{HttpError, Request, Response};
pub use metrics::Metrics;
pub use net::{
    Deadline, FaultStream, NetEvent, NetFaultKind, NetFaultPlan, NetOp, NetScript,
    ALL_NET_FAULT_KINDS,
};
pub use server::{DrainReport, Gateway, GatewayConfig, Server, ServerConfig};
pub use sessions::{CommandOutcome, DrainOutcome, SessionConfig, SessionInfo, SessionStore};
