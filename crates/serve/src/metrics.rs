//! Cheap atomic request/session counters, exposed at `/api/metrics`.

use qagview_common::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of everything the gateway does. All counters are
/// relaxed atomics — they are observability, not synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests parsed off the wire (or handed in-process).
    pub requests: AtomicU64,
    /// Responses in the 200 range.
    pub ok: AtomicU64,
    /// Responses in the 400 range (including admission refusals).
    pub client_errors: AtomicU64,
    /// Responses in the 500 range.
    pub server_errors: AtomicU64,
    /// Commands applied successfully.
    pub commands: AtomicU64,
    /// Sessions created.
    pub sessions_created: AtomicU64,
    /// Sessions evicted to a checkpoint under the resident cap.
    pub sessions_evicted: AtomicU64,
    /// Sessions transparently restored from a checkpoint.
    pub sessions_restored: AtomicU64,
    /// Explicit checkpoint requests served.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint writes that failed (the session stayed resident).
    pub checkpoint_failures: AtomicU64,
    /// Admission refusals: session cap (429).
    pub refused_sessions: AtomicU64,
    /// Admission refusals: connection cap (503).
    pub refused_connections: AtomicU64,
    /// Framing/JSON-level rejections (400/413/501).
    pub protocol_errors: AtomicU64,
    /// Idle keep-alive connections closed silently at the read timeout.
    pub idle_closes: AtomicU64,
    /// Mid-request read timeouts answered with a 408.
    pub request_timeouts: AtomicU64,
    /// Response writes abandoned at the write timeout (slow reader).
    pub write_timeouts: AtomicU64,
    /// Connections dropped on transport errors (reset, aborted, hangup
    /// mid-exchange) in either direction.
    pub net_errors: AtomicU64,
    /// Commands refused because the request's deadline budget ran out
    /// before lock acquisition or execution (503, state untouched).
    pub deadline_exceeded: AtomicU64,
    /// Requests refused because the server is draining (503).
    pub refused_draining: AtomicU64,
    /// Graceful drains started.
    pub drains: AtomicU64,
    /// Sessions checkpointed by a drain.
    pub drain_checkpoints: AtomicU64,
    /// Sessions a drain failed to checkpoint (left resident, not lost).
    pub drain_checkpoint_failures: AtomicU64,
}

impl Metrics {
    /// Increment a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response by its status class.
    pub fn count_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        Metrics::bump(class);
    }

    /// Snapshot every counter as a JSON object.
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::obj([
            ("requests", get(&self.requests)),
            ("ok", get(&self.ok)),
            ("client_errors", get(&self.client_errors)),
            ("server_errors", get(&self.server_errors)),
            ("commands", get(&self.commands)),
            ("sessions_created", get(&self.sessions_created)),
            ("sessions_evicted", get(&self.sessions_evicted)),
            ("sessions_restored", get(&self.sessions_restored)),
            ("checkpoints_written", get(&self.checkpoints_written)),
            ("checkpoint_failures", get(&self.checkpoint_failures)),
            ("refused_sessions", get(&self.refused_sessions)),
            ("refused_connections", get(&self.refused_connections)),
            ("protocol_errors", get(&self.protocol_errors)),
            ("idle_closes", get(&self.idle_closes)),
            ("request_timeouts", get(&self.request_timeouts)),
            ("write_timeouts", get(&self.write_timeouts)),
            ("net_errors", get(&self.net_errors)),
            ("deadline_exceeded", get(&self.deadline_exceeded)),
            ("refused_draining", get(&self.refused_draining)),
            ("drains", get(&self.drains)),
            ("drain_checkpoints", get(&self.drain_checkpoints)),
            (
                "drain_checkpoint_failures",
                get(&self.drain_checkpoint_failures),
            ),
        ])
    }
}
