//! Cheap atomic request/session counters, exposed at `/api/metrics`.

use qagview_common::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of everything the gateway does. All counters are
/// relaxed atomics — they are observability, not synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests parsed off the wire (or handed in-process).
    pub requests: AtomicU64,
    /// Responses in the 200 range.
    pub ok: AtomicU64,
    /// Responses in the 400 range (including admission refusals).
    pub client_errors: AtomicU64,
    /// Responses in the 500 range.
    pub server_errors: AtomicU64,
    /// Commands applied successfully.
    pub commands: AtomicU64,
    /// Sessions created.
    pub sessions_created: AtomicU64,
    /// Sessions evicted to a checkpoint under the resident cap.
    pub sessions_evicted: AtomicU64,
    /// Sessions transparently restored from a checkpoint.
    pub sessions_restored: AtomicU64,
    /// Explicit checkpoint requests served.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint writes that failed (the session stayed resident).
    pub checkpoint_failures: AtomicU64,
    /// Admission refusals: session cap (429).
    pub refused_sessions: AtomicU64,
    /// Admission refusals: connection cap (503).
    pub refused_connections: AtomicU64,
    /// Framing/JSON-level rejections (400/413/501).
    pub protocol_errors: AtomicU64,
}

impl Metrics {
    /// Increment a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response by its status class.
    pub fn count_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        Metrics::bump(class);
    }

    /// Snapshot every counter as a JSON object.
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::obj([
            ("requests", get(&self.requests)),
            ("ok", get(&self.ok)),
            ("client_errors", get(&self.client_errors)),
            ("server_errors", get(&self.server_errors)),
            ("commands", get(&self.commands)),
            ("sessions_created", get(&self.sessions_created)),
            ("sessions_evicted", get(&self.sessions_evicted)),
            ("sessions_restored", get(&self.sessions_restored)),
            ("checkpoints_written", get(&self.checkpoints_written)),
            ("checkpoint_failures", get(&self.checkpoint_failures)),
            ("refused_sessions", get(&self.refused_sessions)),
            ("refused_connections", get(&self.refused_connections)),
            ("protocol_errors", get(&self.protocol_errors)),
        ])
    }
}
