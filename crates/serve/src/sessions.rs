//! The sharded session store: id → live [`ExploreSession`], with LRU
//! eviction to checkpoints and transparent restore.
//!
//! # Concurrency model
//!
//! Sessions live in `shards` hash maps, each behind its own mutex, so
//! lookups on different sessions rarely contend. Each resident session
//! sits in an [`SessionSlot`] whose *inner* mutex serializes commands —
//! interleaved commands on one session execute one at a time, in lock
//! acquisition order, exactly as if a single client had sent them
//! sequentially. Shard locks are only ever held for map operations,
//! never across engine work.
//!
//! # Admission and eviction
//!
//! At most [`SessionConfig::max_resident`] sessions are live at once.
//! When a create (or a checkpoint restore) would exceed the cap, the
//! least-recently-used *idle* session is checkpointed to the configured
//! directory and dropped; a session whose checkpoint cannot be written
//! (no directory, disk fault) is **skipped, never dropped** — degrade,
//! don't corrupt. If nothing is evictable the request is refused with a
//! typed 429 ([`ServeError::SessionLimit`]) and no state changes.
//!
//! # Restore
//!
//! A command against an id that is not resident probes
//! `<checkpoint_dir>/session-<id>.qagsess` through the engine's own
//! [`StoreIo`] (so fault-injection tests cover this path too). A valid
//! checkpoint resumes transparently — the response is byte-identical to
//! the un-evicted session's, with the restore visible only in provenance
//! — and a missing or corrupt file is a typed 404 that mutates nothing.

use crate::api::ServeError;
use crate::metrics::Metrics;
use crate::net::Deadline;
use qagview_common::io::StoreIo;
use qagview_common::{QagError, StoreErrorKind};
use qagview_interactive::{
    checkpoint_file_name, ExploreCommand, ExploreResponse, ExploreSession, Explorer,
    SessionCheckpoint, SessionSpec,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Session-store tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of map shards (lock granularity for session lookup).
    pub shards: usize,
    /// Cap on concurrently *resident* sessions; the admission-control
    /// knob. Evicted sessions don't count — they live on disk.
    pub max_resident: usize,
    /// Where evicted/checkpointed sessions are written. `None` disables
    /// checkpointing: at the cap, creates are refused outright.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            shards: 8,
            max_resident: 256,
            checkpoint_dir: None,
        }
    }
}

/// One resident session.
#[derive(Debug)]
pub struct SessionSlot {
    id: u64,
    /// Logical-clock stamp of the last command (LRU recency).
    last_used: AtomicU64,
    inner: Mutex<SlotInner>,
}

#[derive(Debug)]
struct SlotInner {
    session: ExploreSession,
    /// Commands successfully applied to this session (monotonic).
    seq: u64,
    /// Set under the inner lock when the slot is evicted; a waiter that
    /// acquires the lock afterwards must re-resolve the id (it will
    /// restore from the just-written checkpoint), never mutate this
    /// husk — that update would be invisible to every later restore.
    evicted: bool,
}

/// What a successfully applied command produced.
#[derive(Debug)]
pub struct CommandOutcome {
    /// The command's sequence number within its session (1-based).
    pub seq: u64,
    /// Whether this command transparently restored the session from a
    /// checkpoint first.
    pub restored: bool,
    /// The engine's response.
    pub response: ExploreResponse,
}

/// What a drain sweep accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Sessions checkpointed to disk and released.
    pub checkpointed: usize,
    /// Sessions that could not be checkpointed (still locked at the
    /// deadline, or the write failed); they stay resident.
    pub failures: usize,
}

/// A point-in-time description of one session, for the stats endpoint.
#[derive(Debug)]
pub struct SessionInfo {
    /// Whether the session is resident (vs. checkpointed on disk only).
    pub resident: bool,
    /// Commands applied so far (unknown for a checkpoint-only session).
    pub seq: Option<u64>,
    /// The session's exploration state, if it has one.
    pub state: Option<qagview_interactive::ExploreState>,
    /// Bytes retained in shared caches on this session's behalf.
    pub retained_bytes: u64,
    /// The session's memory budget.
    pub budget_bytes: Option<u64>,
}

/// The sharded map of live sessions plus the checkpoint/restore logic.
#[derive(Debug)]
pub struct SessionStore {
    engine: Arc<Explorer>,
    shards: Vec<Mutex<HashMap<u64, Arc<SessionSlot>>>>,
    cfg: SessionConfig,
    metrics: Arc<Metrics>,
    /// Logical LRU clock, bumped on every command.
    clock: AtomicU64,
    next_id: AtomicU64,
    resident: AtomicUsize,
}

impl SessionStore {
    /// Build a store over a shared engine. When a checkpoint directory is
    /// configured, existing checkpoint files are scanned so freshly
    /// issued ids never collide with sessions from a previous process.
    pub fn new(engine: Arc<Explorer>, cfg: SessionConfig, metrics: Arc<Metrics>) -> Self {
        let shards = (0..cfg.shards.max(1)).map(|_| Mutex::default()).collect();
        let mut next_id = 1u64;
        if let Some(dir) = &cfg.checkpoint_dir {
            if let Ok(entries) = engine.config().store_io.list(dir) {
                for meta in entries {
                    if let Some(id) = checkpoint_id_of(&meta.path) {
                        next_id = next_id.max(id + 1);
                    }
                }
            }
        }
        SessionStore {
            engine,
            shards,
            cfg,
            metrics,
            clock: AtomicU64::new(1),
            next_id: AtomicU64::new(next_id),
            resident: AtomicUsize::new(0),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Sessions currently resident.
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    fn io(&self) -> Arc<dyn StoreIo> {
        Arc::clone(&self.engine.config().store_io)
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<SessionSlot>>> {
        // Mix the id so sequential ids spread across shards.
        let h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    fn checkpoint_path(&self, id: u64) -> Option<PathBuf> {
        self.cfg
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(checkpoint_file_name(id)))
    }

    fn lookup(&self, id: u64) -> Option<Arc<SessionSlot>> {
        self.shard(id).lock().expect("shard lock").get(&id).cloned()
    }

    /// Reserve one resident slot, evicting the LRU idle session if the
    /// cap is reached. On failure nothing has changed.
    fn admit(&self) -> Result<(), ServeError> {
        loop {
            let now = self.resident.load(Ordering::Acquire);
            if now < self.cfg.max_resident {
                if self
                    .resident
                    .compare_exchange(now, now + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Ok(());
                }
                continue; // raced; re-read
            }
            if !self.evict_lru() {
                return Err(ServeError::SessionLimit {
                    resident: now,
                    cap: self.cfg.max_resident,
                });
            }
        }
    }

    /// Checkpoint and drop the least-recently-used idle session. Returns
    /// whether one was evicted. Sessions that are mid-command, or whose
    /// checkpoint cannot be written, are skipped — an eviction failure
    /// never loses state.
    fn evict_lru(&self) -> bool {
        let Some(dir) = self.cfg.checkpoint_dir.as_ref() else {
            return false; // nowhere to spill: the cap is a hard refusal
        };
        let mut candidates: Vec<Arc<SessionSlot>> = Vec::new();
        for shard in &self.shards {
            candidates.extend(shard.lock().expect("shard lock").values().cloned());
        }
        candidates.sort_by_key(|s| s.last_used.load(Ordering::Relaxed));
        let io = self.io();
        for slot in candidates {
            // A held inner lock means the session is mid-command — not idle.
            let Ok(mut inner) = slot.inner.try_lock() else {
                continue;
            };
            if inner.evicted {
                continue;
            }
            let path = dir.join(checkpoint_file_name(slot.id));
            match inner.session.checkpoint().save_io(io.as_ref(), &path) {
                Ok(()) => {
                    inner.evicted = true;
                    drop(inner);
                    let removed = self
                        .shard(slot.id)
                        .lock()
                        .expect("shard lock")
                        .remove(&slot.id)
                        .is_some();
                    if removed {
                        self.resident.fetch_sub(1, Ordering::AcqRel);
                    }
                    Metrics::bump(&self.metrics.sessions_evicted);
                    return true;
                }
                Err(_) => {
                    // Degrade, never corrupt: the session stays resident;
                    // try the next candidate.
                    Metrics::bump(&self.metrics.checkpoint_failures);
                    continue;
                }
            }
        }
        false
    }

    /// Create a fresh session from `spec` and return its id. The spec's
    /// budget override and default fidelity are applied by
    /// [`Explorer::open_session`], the one documented front door.
    pub fn create(&self, spec: SessionSpec) -> Result<u64, ServeError> {
        self.admit()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = self.engine.open_session(spec).map_err(ServeError::Engine)?;
        let slot = Arc::new(SessionSlot {
            id,
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            inner: Mutex::new(SlotInner {
                session,
                seq: 0,
                evicted: false,
            }),
        });
        self.shard(id).lock().expect("shard lock").insert(id, slot);
        Metrics::bump(&self.metrics.sessions_created);
        Ok(id)
    }

    /// Resolve `id` to a resident slot, restoring from a checkpoint when
    /// necessary. Returns the slot and whether a restore happened.
    fn resolve(&self, id: u64) -> Result<(Arc<SessionSlot>, bool), ServeError> {
        if let Some(slot) = self.lookup(id) {
            return Ok((slot, false));
        }
        let path = self
            .checkpoint_path(id)
            .ok_or_else(|| ServeError::UnknownSession(format!("{id:x}")))?;
        let cp = SessionCheckpoint::load_io(self.io().as_ref(), &path).map_err(|e| {
            // Missing and corrupt checkpoints are both "no such session"
            // to the client; the distinction lives in the message.
            match e {
                QagError::Store {
                    kind: StoreErrorKind::NotFound,
                    ..
                } => ServeError::UnknownSession(format!("{id:x}")),
                other => {
                    ServeError::UnknownSession(format!("{id:x} (checkpoint unusable: {other})"))
                }
            }
        })?;
        self.admit()?;
        let slot = Arc::new(SessionSlot {
            id,
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            inner: Mutex::new(SlotInner {
                session: cp.resume(Arc::clone(&self.engine)),
                seq: 0,
                evicted: false,
            }),
        });
        let mut shard = self.shard(id).lock().expect("shard lock");
        match shard.get(&id) {
            // Another thread restored (or re-created) it while we loaded:
            // use theirs, release our reserved slot.
            Some(existing) => {
                let existing = Arc::clone(existing);
                drop(shard);
                self.resident.fetch_sub(1, Ordering::AcqRel);
                Ok((existing, false))
            }
            None => {
                shard.insert(id, Arc::clone(&slot));
                drop(shard);
                Metrics::bump(&self.metrics.sessions_restored);
                Ok((slot, true))
            }
        }
    }

    /// Apply one command to a session, serialized by the session lock.
    /// Any refusal leaves the session exactly as it was.
    pub fn command(&self, id: u64, cmd: ExploreCommand) -> Result<CommandOutcome, ServeError> {
        self.command_deadline(id, cmd, None)
    }

    /// [`SessionStore::command`] under a deadline budget. The budget is
    /// checked while *waiting* for the session lock and once more before
    /// the command executes; once `apply` starts it runs to completion
    /// (engine work is never interrupted mid-mutation). A deadline
    /// refusal is a typed 503 that leaves the session untouched.
    pub fn command_deadline(
        &self,
        id: u64,
        cmd: ExploreCommand,
        deadline: Option<Deadline>,
    ) -> Result<CommandOutcome, ServeError> {
        loop {
            let (slot, restored) = self.resolve(id)?;
            let mut inner = match deadline {
                None => slot.inner.lock().expect("session lock"),
                // `std::sync::Mutex` has no timed lock: poll `try_lock`
                // with a short park, refusing when the budget runs out.
                Some(d) => loop {
                    match slot.inner.try_lock() {
                        Ok(guard) => break guard,
                        Err(std::sync::TryLockError::Poisoned(_)) => panic!("session lock"),
                        Err(std::sync::TryLockError::WouldBlock) => {
                            if d.expired() {
                                return Err(ServeError::DeadlineExceeded {
                                    stage: "session_lock",
                                });
                            }
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                    }
                },
            };
            if inner.evicted {
                // Evicted between resolve and lock: its state is safely in
                // the checkpoint; re-resolve (which restores from it).
                continue;
            }
            if deadline.is_some_and(|d| d.expired()) {
                return Err(ServeError::DeadlineExceeded { stage: "execute" });
            }
            let response = inner.session.apply(cmd).map_err(ServeError::Engine)?;
            inner.seq += 1;
            let seq = inner.seq;
            slot.last_used.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            Metrics::bump(&self.metrics.commands);
            return Ok(CommandOutcome {
                seq,
                restored,
                response,
            });
        }
    }

    /// Describe a session: resident state if live, otherwise a read-only
    /// peek at its checkpoint (without making it resident).
    pub fn info(&self, id: u64) -> Result<SessionInfo, ServeError> {
        if let Some(slot) = self.lookup(id) {
            let inner = slot.inner.lock().expect("session lock");
            if !inner.evicted {
                return Ok(SessionInfo {
                    resident: true,
                    seq: Some(inner.seq),
                    state: inner.session.state().cloned(),
                    retained_bytes: inner.session.retained_bytes(),
                    budget_bytes: inner.session.budget_bytes(),
                });
            }
        }
        let path = self
            .checkpoint_path(id)
            .ok_or_else(|| ServeError::UnknownSession(format!("{id:x}")))?;
        let cp = SessionCheckpoint::load_io(self.io().as_ref(), &path)
            .map_err(|_| ServeError::UnknownSession(format!("{id:x}")))?;
        Ok(SessionInfo {
            resident: false,
            seq: None,
            state: cp.state,
            retained_bytes: cp.retained_bytes,
            budget_bytes: cp.budget_bytes,
        })
    }

    /// Explicitly checkpoint a resident session (it stays resident).
    pub fn checkpoint(&self, id: u64) -> Result<(), ServeError> {
        let slot = self
            .lookup(id)
            .ok_or_else(|| ServeError::UnknownSession(format!("{id:x}")))?;
        let path = self.checkpoint_path(id).ok_or_else(|| {
            ServeError::Engine(QagError::internal("no checkpoint directory is configured"))
        })?;
        let inner = slot.inner.lock().expect("session lock");
        if inner.evicted {
            return Err(ServeError::UnknownSession(format!("{id:x}")));
        }
        inner
            .session
            .checkpoint()
            .save_io(self.io().as_ref(), &path)
            .map_err(|e| {
                Metrics::bump(&self.metrics.checkpoint_failures);
                ServeError::Engine(e)
            })?;
        Metrics::bump(&self.metrics.checkpoints_written);
        Ok(())
    }

    /// Checkpoint **every** resident session and remove it from the map —
    /// the graceful-drain sweep. Each session's inner lock is polled
    /// until acquired or `deadline` runs out (a session still mid-command
    /// after the in-flight grace period is counted as a failure and left
    /// resident, never dropped), and a checkpoint that cannot be written
    /// likewise leaves its session resident: degrade, don't corrupt. A
    /// restarted server over the same checkpoint directory restores every
    /// drained session bit-identically.
    pub fn drain_to_checkpoints(&self, deadline: Deadline) -> DrainOutcome {
        let mut out = DrainOutcome::default();
        let Some(dir) = self.cfg.checkpoint_dir.clone() else {
            // Nowhere to spill: nothing to do (sessions die with the
            // process exactly as they always did without a directory).
            return out;
        };
        let mut slots: Vec<Arc<SessionSlot>> = Vec::new();
        for shard in &self.shards {
            slots.extend(shard.lock().expect("shard lock").values().cloned());
        }
        let io = self.io();
        for slot in slots {
            let inner = loop {
                match slot.inner.try_lock() {
                    Ok(guard) => break Some(guard),
                    Err(std::sync::TryLockError::Poisoned(_)) => panic!("session lock"),
                    Err(std::sync::TryLockError::WouldBlock) if deadline.expired() => break None,
                    Err(std::sync::TryLockError::WouldBlock) => {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            };
            let Some(mut inner) = inner else {
                Metrics::bump(&self.metrics.drain_checkpoint_failures);
                out.failures += 1;
                continue;
            };
            if inner.evicted {
                continue; // already safely on disk
            }
            let path = dir.join(checkpoint_file_name(slot.id));
            match inner.session.checkpoint().save_io(io.as_ref(), &path) {
                Ok(()) => {
                    inner.evicted = true;
                    drop(inner);
                    let removed = self
                        .shard(slot.id)
                        .lock()
                        .expect("shard lock")
                        .remove(&slot.id)
                        .is_some();
                    if removed {
                        self.resident.fetch_sub(1, Ordering::AcqRel);
                    }
                    Metrics::bump(&self.metrics.drain_checkpoints);
                    out.checkpointed += 1;
                }
                Err(_) => {
                    Metrics::bump(&self.metrics.drain_checkpoint_failures);
                    Metrics::bump(&self.metrics.checkpoint_failures);
                    out.failures += 1;
                }
            }
        }
        out
    }

    /// Drop a session: its resident slot (if any) and its checkpoint
    /// file (if any). 404 when neither exists.
    pub fn delete(&self, id: u64) -> Result<(), ServeError> {
        let removed = {
            let mut shard = self.shard(id).lock().expect("shard lock");
            shard.remove(&id).is_some()
        };
        if removed {
            self.resident.fetch_sub(1, Ordering::AcqRel);
        }
        let file_removed = self
            .checkpoint_path(id)
            .is_some_and(|p| self.io().remove(&p).is_ok());
        if removed || file_removed {
            Ok(())
        } else {
            Err(ServeError::UnknownSession(format!("{id:x}")))
        }
    }
}

/// Parse the session id out of a checkpoint file name
/// (`session-<16 hex digits>.qagsess`).
fn checkpoint_id_of(path: &std::path::Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("session-")?.strip_suffix(".qagsess")?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_ids_parse_from_file_names() {
        let p = std::path::Path::new("/x/session-00000000000000ff.qagsess");
        assert_eq!(checkpoint_id_of(p), Some(0xff));
        assert_eq!(
            checkpoint_id_of(std::path::Path::new("/x/plane-abc.qag")),
            None
        );
        assert_eq!(
            checkpoint_id_of(std::path::Path::new("/x/session-zz.qagsess")),
            None
        );
    }
}
