//! The JSON command/response vocabulary and the typed refusal model.
//!
//! Commands mirror [`ExploreCommand`] one-to-one; responses split into a
//! **deterministic view object** — state, summary, guidance plot,
//! transition, all floats printed via shortest-round-trip formatting so
//! equal `f64` bits always produce equal text — and per-request metadata
//! (session id, sequence number, restore marker, cache provenance). The
//! correctness tests hinge on that split: a view served over TCP by a
//! warm process and the same state computed on a bare
//! [`Explorer`](qagview_interactive::Explorer) must serialize to
//! **byte-identical** view text (and therefore an identical
//! [`view_digest`]), while provenance is allowed to differ.
//!
//! [`ServeError`] is the single refusal type. Every failure a request can
//! hit — framing, JSON, unknown route or session, admission refusals,
//! engine rejections — maps to one status and one machine-checkable
//! `kind` slug, and *refusals never mutate session state*: the engine
//! already guarantees a failed command leaves the session untouched, and
//! the serving layer keeps that contract for its own refusals.

use crate::http::HttpError;
use qagview_common::json::Json;
use qagview_common::wire::checksum64;
use qagview_common::QagError;
use qagview_interactive::{
    CacheLayer, CacheOutcome, CacheProvenance, Degradation, ExploreCommand, ExploreResponse,
    ExploreState, Fidelity, FidelityMode, SummaryView,
};
use qagview_lattice::{Pattern, STAR};

/// Wire protocol version stamped on every command response (`"v"`).
///
/// * **v1** — the original schema: state/summary/plot/transition view,
///   digest, provenance. Implicitly exact-only.
/// * **v2** — progressive mode: responses carry a top-level `"fidelity"`
///   object and the view's state/summary gained `fidelity` fields; new
///   commands `set_fidelity` and `await_exact`; session creation accepts
///   a `"fidelity"` field. Parsing stays field-tolerant in both
///   directions, so a v1-shaped client that ignores unknown fields keeps
///   working against exact-mode sessions (see the compat tests).
pub const PROTOCOL_VERSION: u64 = 2;

/// Every way a request can be refused, with its HTTP status and a stable
/// machine-checkable `kind` slug.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bytes were not a well-formed request (400/413/501).
    Protocol(HttpError),
    /// The body was not valid JSON.
    BadJson(String),
    /// The JSON was valid but not a command this API defines.
    BadCommand(String),
    /// No resident session and no restorable checkpoint under this id.
    UnknownSession(String),
    /// No such endpoint.
    UnknownRoute(String),
    /// The endpoint exists but not for this method.
    MethodNotAllowed(String),
    /// Admission control refused a new (or restoring) session: the
    /// resident cap is reached and no idle session could be evicted.
    SessionLimit {
        /// Sessions currently resident.
        resident: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The server is at its connection cap.
    Overloaded(String),
    /// The client did not deliver its request within the per-request
    /// deadline (408); the connection is closed after this answer.
    RequestTimeout,
    /// The request's deadline budget ran out before the named stage
    /// (session-lock wait, command execution) started real work — the
    /// session state is untouched and the command was **not** applied.
    DeadlineExceeded {
        /// Which stage exhausted the budget (`"session_lock"`, `"execute"`).
        stage: &'static str,
    },
    /// The server is draining: it finishes in-flight work and checkpoints
    /// sessions, but accepts no new mutations.
    Draining,
    /// The engine rejected the command (bad SQL, knob violation, memory
    /// budget, internal fault) — the session state is unchanged.
    Engine(QagError),
}

impl ServeError {
    /// The HTTP status this refusal answers with.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Protocol(e) => e.status(),
            ServeError::BadJson(_) | ServeError::BadCommand(_) => 400,
            ServeError::UnknownSession(_) | ServeError::UnknownRoute(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::SessionLimit { .. } => 429,
            ServeError::RequestTimeout => 408,
            ServeError::Overloaded(_)
            | ServeError::DeadlineExceeded { .. }
            | ServeError::Draining => 503,
            ServeError::Engine(e) => match e {
                QagError::BudgetExceeded { .. } => 429,
                QagError::Parse { .. }
                | QagError::Binding(_)
                | QagError::Execution(_)
                | QagError::InvalidParameter(_)
                | QagError::SchemaMismatch(_) => 422,
                QagError::Internal(_) | QagError::Store { .. } => 500,
            },
        }
    }

    /// A stable slug naming the refusal class.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Protocol(HttpError::BadRequest(_)) => "bad_request",
            ServeError::Protocol(HttpError::PayloadTooLarge(_)) => "payload_too_large",
            ServeError::Protocol(HttpError::NotImplemented(_)) => "not_implemented",
            ServeError::BadJson(_) => "bad_json",
            ServeError::BadCommand(_) => "bad_command",
            ServeError::UnknownSession(_) => "unknown_session",
            ServeError::UnknownRoute(_) => "unknown_route",
            ServeError::MethodNotAllowed(_) => "method_not_allowed",
            ServeError::SessionLimit { .. } => "session_limit",
            ServeError::Overloaded(_) => "overloaded",
            ServeError::RequestTimeout => "request_timeout",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Draining => "draining",
            ServeError::Engine(QagError::BudgetExceeded { .. }) => "budget_exceeded",
            ServeError::Engine(_) => "command_rejected",
        }
    }

    /// The human-readable detail.
    pub fn message(&self) -> String {
        match self {
            ServeError::Protocol(e) => e.message().to_string(),
            ServeError::BadJson(m) | ServeError::BadCommand(m) | ServeError::Overloaded(m) => {
                m.clone()
            }
            ServeError::UnknownSession(id) => format!("no session or checkpoint under id {id:?}"),
            ServeError::UnknownRoute(path) => format!("no endpoint at {path:?}"),
            ServeError::MethodNotAllowed(m) => m.clone(),
            ServeError::SessionLimit { resident, cap } => format!(
                "session cap reached ({resident}/{cap} resident, none evictable); retry later"
            ),
            ServeError::RequestTimeout => {
                "the request was not delivered within the per-request deadline".into()
            }
            ServeError::DeadlineExceeded { stage } => format!(
                "the request deadline expired before the {stage} stage; the command was not applied"
            ),
            ServeError::Draining => "the server is draining; no new work is accepted".into(),
            ServeError::Engine(e) => e.to_string(),
        }
    }

    /// The `Retry-After` hint (seconds) for refusals a client should
    /// retry, `None` for the rest.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServeError::SessionLimit { .. }
            | ServeError::Overloaded(_)
            | ServeError::DeadlineExceeded { .. } => Some(1),
            ServeError::Draining => Some(2),
            _ => None,
        }
    }

    /// The refusal as a JSON body: `{"error":{status, kind, message}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("status", Json::from(u64::from(self.status()))),
                ("kind", Json::from(self.kind())),
                ("message", Json::from(self.message())),
            ]),
        )])
    }
}

/// Decode a request body into an [`ExploreCommand`].
///
/// The schema is one object with a `cmd` discriminator:
///
/// | `cmd`           | payload                                         |
/// |-----------------|-------------------------------------------------|
/// | `set_query`     | `"sql"`: string                                 |
/// | `set_threshold` | `"value"`: number                               |
/// | `set_k` / `set_l` / `set_d` | `"value"`: non-negative integer     |
/// | `drill_down`    | `"pattern"`: array of code-or-`null` (`null` = ∗) |
/// | `set_fidelity`  | `"mode"`: `"exact"` or `"approximate"` (v2)     |
/// | `await_exact`   | — (v2)                                          |
///
/// Unknown *fields* are ignored (tolerant parsing); an unknown `cmd` is
/// a typed refusal.
pub fn parse_command(body: &[u8]) -> Result<ExploreCommand, ServeError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ServeError::BadJson("body is not UTF-8".into()))?;
    let doc = qagview_common::json::parse(text).map_err(|e| ServeError::BadJson(e.to_string()))?;
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadCommand("missing string field \"cmd\"".into()))?;
    let knob = |doc: &Json| -> Result<usize, ServeError> {
        doc.get("value")
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| {
                ServeError::BadCommand(format!("{cmd:?} needs an integer field \"value\""))
            })
    };
    match cmd {
        "set_query" => {
            let sql = doc.get("sql").and_then(Json::as_str).ok_or_else(|| {
                ServeError::BadCommand("\"set_query\" needs a string field \"sql\"".into())
            })?;
            Ok(ExploreCommand::SetQuery(sql.to_string()))
        }
        "set_threshold" => {
            let v = doc.get("value").and_then(Json::as_f64).ok_or_else(|| {
                ServeError::BadCommand("\"set_threshold\" needs a number field \"value\"".into())
            })?;
            Ok(ExploreCommand::SetThreshold(v))
        }
        "set_k" => Ok(ExploreCommand::SetK(knob(&doc)?)),
        "set_l" => Ok(ExploreCommand::SetL(knob(&doc)?)),
        "set_d" => Ok(ExploreCommand::SetD(knob(&doc)?)),
        "drill_down" => {
            let arr = doc.get("pattern").and_then(|p| match p {
                Json::Arr(items) => Some(items.as_slice()),
                _ => None,
            });
            let items = arr.ok_or_else(|| {
                ServeError::BadCommand("\"drill_down\" needs an array field \"pattern\"".into())
            })?;
            let mut slots = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Null => slots.push(STAR),
                    other => {
                        let code =
                            other
                                .as_u64()
                                .filter(|&c| c < u64::from(STAR))
                                .ok_or_else(|| {
                                    ServeError::BadCommand(
                                        "pattern slots are null (∗) or attribute codes".into(),
                                    )
                                })?;
                        slots.push(code as u32);
                    }
                }
            }
            Ok(ExploreCommand::DrillDown(Pattern::new(slots)))
        }
        "set_fidelity" => {
            let mode = doc.get("mode").and_then(Json::as_str).ok_or_else(|| {
                ServeError::BadCommand("\"set_fidelity\" needs a string field \"mode\"".into())
            })?;
            Ok(ExploreCommand::SetFidelity(parse_fidelity_mode(mode)?))
        }
        "await_exact" => Ok(ExploreCommand::AwaitExact),
        other => Err(ServeError::BadCommand(format!("unknown cmd {other:?}"))),
    }
}

/// Decode a fidelity-mode string (session creation, `set_fidelity`).
pub fn parse_fidelity_mode(mode: &str) -> Result<FidelityMode, ServeError> {
    match mode {
        "exact" => Ok(FidelityMode::Exact),
        "approximate" => Ok(FidelityMode::Approximate),
        other => Err(ServeError::BadCommand(format!(
            "fidelity mode {other:?} is not \"exact\" or \"approximate\""
        ))),
    }
}

fn fidelity_mode_str(mode: FidelityMode) -> &'static str {
    match mode {
        FidelityMode::Exact => "exact",
        FidelityMode::Approximate => "approximate",
    }
}

/// A fidelity as its wire object: `{"mode": ...}` plus the error
/// envelope in approximate mode.
pub fn fidelity_json(f: Fidelity) -> Json {
    match f {
        Fidelity::Exact => Json::obj([("mode", Json::from("exact"))]),
        Fidelity::Approximate {
            rel_err,
            confidence,
        } => Json::obj([
            ("mode", Json::from("approximate")),
            ("rel_err", Json::from(rel_err)),
            ("confidence", Json::from(confidence)),
        ]),
        Fidelity::Refined => Json::obj([("mode", Json::from("refined"))]),
    }
}

fn pattern_json(p: &Pattern) -> Json {
    Json::Arr(
        p.slots()
            .iter()
            .map(|&s| {
                if s == STAR {
                    Json::Null
                } else {
                    Json::from(u64::from(s))
                }
            })
            .collect(),
    )
}

fn state_json(state: &ExploreState) -> Json {
    Json::obj([
        ("sql", Json::from(state.sql.as_str())),
        ("k", Json::from(state.k)),
        ("l", Json::from(state.l)),
        ("d", Json::from(state.d)),
        ("threshold", state.threshold.map_or(Json::Null, Json::from)),
        (
            "drill",
            state.drill.as_ref().map_or(Json::Null, pattern_json),
        ),
        ("fidelity", Json::from(fidelity_mode_str(state.fidelity))),
    ])
}

fn summary_json(s: &SummaryView) -> Json {
    Json::obj([
        (
            "attr_names",
            Json::Arr(
                s.attr_names
                    .iter()
                    .map(|n| Json::from(n.as_str()))
                    .collect(),
            ),
        ),
        (
            "clusters",
            Json::Arr(
                s.clusters
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("pattern", pattern_json(&c.pattern)),
                            ("label", Json::from(c.label.as_str())),
                            ("size", Json::from(c.size)),
                            ("top_l", Json::from(c.top_l)),
                            ("sum", Json::from(c.sum)),
                            ("avg", Json::from(c.avg)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("covered", Json::from(s.covered)),
        ("total", Json::from(s.total)),
        ("avg", Json::from(s.avg)),
        ("k", Json::from(s.k)),
        ("l", Json::from(s.l)),
        ("d", Json::from(s.d)),
        ("fidelity", fidelity_json(s.fidelity)),
    ])
}

fn usizes(vs: &[usize]) -> Json {
    Json::Arr(vs.iter().map(|&v| Json::from(v)).collect())
}

/// The deterministic view object of a response: state, summary, plot,
/// transition. Equal engine views serialize to equal bytes.
pub fn view_json(resp: &ExploreResponse) -> Json {
    let plot = Json::obj([
        ("l", Json::from(resp.plot.l)),
        ("k_values", usizes(&resp.plot.k_values)),
        (
            "series",
            Json::Arr(
                resp.plot
                    .series
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("d", Json::from(s.d)),
                            (
                                "avg_by_k",
                                Json::Arr(s.avg_by_k.iter().map(|&v| Json::from(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let transition = resp.transition.as_ref().map_or(Json::Null, |t| {
        Json::obj([
            (
                "left_labels",
                Json::Arr(
                    t.left_labels
                        .iter()
                        .map(|l| Json::from(l.as_str()))
                        .collect(),
                ),
            ),
            (
                "right_labels",
                Json::Arr(
                    t.right_labels
                        .iter()
                        .map(|l| Json::from(l.as_str()))
                        .collect(),
                ),
            ),
            ("left_sizes", usizes(&t.left_sizes)),
            ("right_sizes", usizes(&t.right_sizes)),
            ("left_top", usizes(&t.left_top)),
            ("right_top", usizes(&t.right_top)),
            (
                "overlaps",
                Json::Arr(t.overlaps.iter().map(|row| usizes(row)).collect()),
            ),
        ])
    });
    Json::obj([
        ("state", state_json(&resp.state)),
        ("summary", summary_json(&resp.summary)),
        ("plot", plot),
        ("transition", transition),
    ])
}

/// A 64-bit digest of the serialized view text — the quantity the
/// byte-identity tests (and the loadgen's zero-divergence check) compare.
pub fn view_digest(resp: &ExploreResponse) -> u64 {
    checksum64(view_json(resp).to_text().as_bytes())
}

fn outcome_str(o: CacheOutcome) -> &'static str {
    match o {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
    }
}

fn layer_str(layer: CacheLayer) -> &'static str {
    match layer {
        CacheLayer::GroupPhase => "group_phase",
        CacheLayer::Answers => "answers",
        CacheLayer::Planes => "planes",
        CacheLayer::Summarizers => "summarizers",
        CacheLayer::Store => "store",
    }
}

fn degradation_json(d: &Degradation) -> Json {
    match d {
        Degradation::StoreRetried { attempts } => Json::obj([
            ("kind", Json::from("store_retried")),
            ("attempts", Json::from(u64::from(*attempts))),
        ]),
        Degradation::StoreWriteBackDropped { attempts } => Json::obj([
            ("kind", Json::from("store_write_back_dropped")),
            ("attempts", Json::from(u64::from(*attempts))),
        ]),
        Degradation::PlaneShed { needed, budget } => Json::obj([
            ("kind", Json::from("plane_shed")),
            ("needed", Json::from(*needed)),
            ("budget", Json::from(*budget)),
        ]),
        Degradation::PoisonRecovered { layer } => Json::obj([
            ("kind", Json::from("poison_recovered")),
            ("layer", Json::from(layer_str(*layer))),
        ]),
        Degradation::RefinementFailed { reason } => Json::obj([
            ("kind", Json::from("refinement_failed")),
            ("reason", Json::from(reason.as_str())),
        ]),
    }
}

/// The provenance object of one response: which cache layer answered each
/// stage, every degradation taken, and whether this command transparently
/// restored the session from a checkpoint.
pub fn provenance_json(p: &CacheProvenance, restored: bool) -> Json {
    Json::obj([
        ("group_phase", Json::from(outcome_str(p.group_phase))),
        ("answers", Json::from(outcome_str(p.answers))),
        ("plane", Json::from(outcome_str(p.plane))),
        (
            "plane_store",
            p.plane_store
                .map_or(Json::Null, |o| Json::from(outcome_str(o))),
        ),
        (
            "summarizer",
            p.summarizer
                .map_or(Json::Null, |o| Json::from(outcome_str(o))),
        ),
        (
            "degradations",
            Json::Arr(p.degradations.iter().map(degradation_json).collect()),
        ),
        ("fidelity", fidelity_json(p.fidelity)),
        ("restored", Json::from(restored)),
    ])
}

/// The full command-response body.
pub fn response_json(session_hex: &str, seq: u64, restored: bool, resp: &ExploreResponse) -> Json {
    let view = view_json(resp);
    let digest = checksum64(view.to_text().as_bytes());
    Json::obj([
        ("v", Json::from(PROTOCOL_VERSION)),
        ("session", Json::from(session_hex)),
        ("seq", Json::from(seq)),
        ("digest", Json::from(format!("{digest:016x}"))),
        ("fidelity", fidelity_json(resp.fidelity)),
        ("provenance", provenance_json(&resp.provenance, restored)),
        ("view", view),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command(br#"{"cmd":"set_query","sql":"SELECT 1"}"#).unwrap(),
            ExploreCommand::SetQuery("SELECT 1".into())
        );
        assert_eq!(
            parse_command(br#"{"cmd":"set_threshold","value":12.5}"#).unwrap(),
            ExploreCommand::SetThreshold(12.5)
        );
        assert_eq!(
            parse_command(br#"{"cmd":"set_k","value":3}"#).unwrap(),
            ExploreCommand::SetK(3)
        );
        assert_eq!(
            parse_command(br#"{"cmd":"drill_down","pattern":[3,null,7]}"#).unwrap(),
            ExploreCommand::DrillDown(Pattern::new(vec![3, STAR, 7]))
        );
    }

    #[test]
    fn fidelity_commands_parse() {
        assert_eq!(
            parse_command(br#"{"cmd":"set_fidelity","mode":"approximate"}"#).unwrap(),
            ExploreCommand::SetFidelity(FidelityMode::Approximate)
        );
        assert_eq!(
            parse_command(br#"{"cmd":"set_fidelity","mode":"exact"}"#).unwrap(),
            ExploreCommand::SetFidelity(FidelityMode::Exact)
        );
        assert_eq!(
            parse_command(br#"{"cmd":"await_exact"}"#).unwrap(),
            ExploreCommand::AwaitExact
        );
        let err = parse_command(br#"{"cmd":"set_fidelity","mode":"fuzzy"}"#).unwrap_err();
        assert_eq!(err.kind(), "bad_command");
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        // Tolerant parsing is the forward-compat contract: a v3 client may
        // attach fields this server has never heard of.
        assert_eq!(
            parse_command(br#"{"cmd":"set_k","value":3,"hint":"fast","v":3}"#).unwrap(),
            ExploreCommand::SetK(3)
        );
        assert_eq!(
            parse_command(br#"{"cmd":"await_exact","deadline_ms":250}"#).unwrap(),
            ExploreCommand::AwaitExact
        );
    }

    #[test]
    fn fidelity_json_shapes() {
        assert_eq!(
            fidelity_json(Fidelity::Exact).to_text(),
            r#"{"mode":"exact"}"#
        );
        assert_eq!(
            fidelity_json(Fidelity::Refined).to_text(),
            r#"{"mode":"refined"}"#
        );
        let approx = fidelity_json(Fidelity::Approximate {
            rel_err: 0.25,
            confidence: 0.95,
        })
        .to_text();
        assert!(approx.contains(r#""mode":"approximate""#), "{approx}");
        assert!(approx.contains(r#""rel_err":0.25"#), "{approx}");
        assert!(approx.contains(r#""confidence":0.95"#), "{approx}");
    }

    #[test]
    fn refusals_are_typed() {
        for (body, kind) in [
            (&b"not json"[..], "bad_json"),
            (b"\xff\xfe", "bad_json"),
            (br#"{"cmd":"warp"}"#, "bad_command"),
            (br#"{"cmd":"set_k"}"#, "bad_command"),
            (br#"{"cmd":"set_k","value":-1}"#, "bad_command"),
            (br#"{"cmd":"set_k","value":1.5}"#, "bad_command"),
            (br#"{"cmd":"set_query"}"#, "bad_command"),
            (
                br#"{"cmd":"drill_down","pattern":[4294967295]}"#,
                "bad_command",
            ),
            (br#"{"cmd":"drill_down","pattern":"x"}"#, "bad_command"),
            (br#"[]"#, "bad_command"),
        ] {
            let err = parse_command(body).unwrap_err();
            assert_eq!(err.kind(), kind, "{}", String::from_utf8_lossy(body));
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn error_bodies_carry_status_kind_message() {
        let e = ServeError::SessionLimit {
            resident: 4,
            cap: 4,
        };
        assert_eq!(e.status(), 429);
        let body = e.to_json();
        assert_eq!(body.path("error.status").unwrap().as_u64(), Some(429));
        assert_eq!(
            body.path("error.kind").unwrap().as_str(),
            Some("session_limit")
        );
        let budget = ServeError::Engine(QagError::BudgetExceeded {
            needed: 10,
            budget: 5,
        });
        assert_eq!(budget.status(), 429);
        assert_eq!(budget.kind(), "budget_exceeded");
    }

    #[test]
    fn deadline_refusals_are_typed_and_retryable() {
        let t = ServeError::RequestTimeout;
        assert_eq!(
            (t.status(), t.kind(), t.retry_after()),
            (408, "request_timeout", None)
        );
        let d = ServeError::DeadlineExceeded {
            stage: "session_lock",
        };
        assert_eq!((d.status(), d.kind()), (503, "deadline_exceeded"));
        assert_eq!(d.retry_after(), Some(1));
        assert!(d.message().contains("session_lock"));
        let dr = ServeError::Draining;
        assert_eq!(
            (dr.status(), dr.kind(), dr.retry_after()),
            (503, "draining", Some(2))
        );
    }
}
