//! Deterministic network-fault injection for connection streams, and the
//! request-deadline type threaded through the serving path.
//!
//! This is the wire-side analogue of the store's
//! [`FaultIo`](qagview_common::FaultIo): a [`NetScript`] carries a global
//! operation counter and a list of scheduled [`NetFaultPlan`]s, and a
//! [`FaultStream`] wraps any `Read`/`Write` stream (a `TcpStream` half in
//! production, an in-memory cursor in tests) so the production server and
//! the chaos harness exercise **one** code path. With no script attached
//! the server never constructs a `FaultStream` at all — fault injection
//! is zero-cost when off.
//!
//! # Fault semantics
//!
//! | Kind         | On a read                         | On a write                     |
//! |--------------|-----------------------------------|--------------------------------|
//! | `ShortRead`  | deliver at most 1 byte            | accept at most half the buffer |
//! | `ShortWrite` | deliver at most 1 byte            | accept at most half the buffer |
//! | `Stall`      | `ErrorKind::TimedOut` — the same error a tripped `SO_RCVTIMEO`/`SO_SNDTIMEO` surfaces |
//! | `Reset`      | `ErrorKind::ConnectionReset`      | `ErrorKind::ConnectionReset`   |
//! | `SlowDrip`   | sticky: every later read on every stream of this script delivers at most 1 byte (slow-loris arrival pacing, without wall-clock sleeps) |
//! | `Crash`      | sticky: this and every later op on every stream fails with `ConnectionAborted` until [`NetScript::reboot`] — a total NIC outage |
//!
//! Short reads and writes are *degradations*, not errors: correct callers
//! (`BufRead` loops, `write_all`) absorb them and the exchange still
//! completes byte-identically. Stalls and resets are *errors* the
//! connection loop must turn into a typed refusal or a clean close —
//! never a panic, never a wedged thread, never corrupted session state.
//!
//! With concurrent connections the global op counter interleaves
//! nondeterministically, so a scheduled `at_op` means "some operation
//! somewhere near that point"; the chaos harness asserts invariants that
//! must hold regardless of which stream the fault lands on.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The direction of one socket operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetOp {
    /// A read off the stream.
    Read,
    /// A write into the stream.
    Write,
}

impl NetOp {
    /// A stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            NetOp::Read => "read",
            NetOp::Write => "write",
        }
    }
}

/// Every network fault the script can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// One read delivers at most 1 byte (fragmented arrival).
    ShortRead,
    /// One write accepts at most half its buffer (partial send).
    ShortWrite,
    /// The op times out, exactly as a tripped socket timeout would.
    Stall,
    /// The op fails with `ConnectionReset`.
    Reset,
    /// Sticky: all later reads deliver at most 1 byte (slow-loris pacing).
    SlowDrip,
    /// Sticky: all later ops on all streams fail until [`NetScript::reboot`].
    Crash,
}

/// Every fault kind, for exhaustive chaos matrices.
pub const ALL_NET_FAULT_KINDS: [NetFaultKind; 6] = [
    NetFaultKind::ShortRead,
    NetFaultKind::ShortWrite,
    NetFaultKind::Stall,
    NetFaultKind::Reset,
    NetFaultKind::SlowDrip,
    NetFaultKind::Crash,
];

impl NetFaultKind {
    /// A stable lowercase slug (event logs, CLI args).
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::ShortRead => "short_read",
            NetFaultKind::ShortWrite => "short_write",
            NetFaultKind::Stall => "stall",
            NetFaultKind::Reset => "reset",
            NetFaultKind::SlowDrip => "slow_drip",
            NetFaultKind::Crash => "crash",
        }
    }
}

impl std::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: fire `kind` at global operation index `at_op`.
#[derive(Debug, Clone, Copy)]
pub struct NetFaultPlan {
    /// The 0-based global op index (reads and writes share one counter).
    pub at_op: u64,
    /// What to inject there.
    pub kind: NetFaultKind,
}

/// One recorded socket operation.
#[derive(Debug, Clone)]
pub struct NetEvent {
    /// Global op index.
    pub op_index: u64,
    /// Direction.
    pub op: NetOp,
    /// The fault injected here, if any (sticky faults are recorded on
    /// every op they affect).
    pub fault: Option<NetFaultKind>,
    /// Bytes actually transferred.
    pub bytes: usize,
}

/// The shared fault script: one per server, shared by every connection's
/// [`FaultStream`]s. Cheap when empty; deterministic when scripted.
#[derive(Debug, Default)]
pub struct NetScript {
    ops: AtomicU64,
    crashed: AtomicBool,
    dripping: AtomicBool,
    state: Mutex<ScriptState>,
}

#[derive(Debug, Default)]
struct ScriptState {
    plans: Vec<NetFaultPlan>,
    events: Vec<NetEvent>,
}

impl NetScript {
    /// An empty script (no faults; still counts and records ops).
    pub fn new() -> Self {
        NetScript::default()
    }

    /// A script with faults pre-scheduled.
    pub fn with_plan(plans: Vec<NetFaultPlan>) -> Self {
        let script = NetScript::default();
        script.state.lock().expect("net script lock").plans = plans;
        script
    }

    /// Schedule one more fault.
    pub fn schedule(&self, at_op: u64, kind: NetFaultKind) {
        self.state
            .lock()
            .expect("net script lock")
            .plans
            .push(NetFaultPlan { at_op, kind });
    }

    /// Global operations seen so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether a `Crash` fault has fired and not been rebooted.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Clear the sticky `Crash` and `SlowDrip` states — the network came
    /// back. Scheduled-but-unfired plans stay scheduled.
    pub fn reboot(&self) {
        self.crashed.store(false, Ordering::Relaxed);
        self.dripping.store(false, Ordering::Relaxed);
    }

    /// A snapshot of every recorded operation.
    pub fn events(&self) -> Vec<NetEvent> {
        self.state.lock().expect("net script lock").events.clone()
    }

    /// How many recorded ops carried an injected fault.
    pub fn faults_fired(&self) -> usize {
        self.state
            .lock()
            .expect("net script lock")
            .events
            .iter()
            .filter(|e| e.fault.is_some())
            .count()
    }

    /// Claim the next op index and decide which fault (if any) applies.
    fn fire(&self, _op: NetOp) -> (u64, Option<NetFaultKind>) {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.crashed.load(Ordering::Relaxed) {
            return (idx, Some(NetFaultKind::Crash));
        }
        let planned = {
            let mut st = self.state.lock().expect("net script lock");
            st.plans
                .iter()
                .position(|p| p.at_op == idx)
                .map(|i| st.plans.remove(i).kind)
        };
        match planned {
            Some(NetFaultKind::Crash) => {
                self.crashed.store(true, Ordering::Relaxed);
                (idx, Some(NetFaultKind::Crash))
            }
            Some(NetFaultKind::SlowDrip) => {
                self.dripping.store(true, Ordering::Relaxed);
                (idx, Some(NetFaultKind::SlowDrip))
            }
            Some(kind) => (idx, Some(kind)),
            None if self.dripping.load(Ordering::Relaxed) => (idx, Some(NetFaultKind::SlowDrip)),
            None => (idx, None),
        }
    }

    fn record(&self, op_index: u64, op: NetOp, fault: Option<NetFaultKind>, bytes: usize) {
        self.state
            .lock()
            .expect("net script lock")
            .events
            .push(NetEvent {
                op_index,
                op,
                fault,
                bytes,
            });
    }
}

/// A stream wrapper that consults a shared [`NetScript`] on every read
/// and write. The server wraps both halves of a connection in
/// `FaultStream`s sharing one script.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    script: std::sync::Arc<NetScript>,
}

impl<S> FaultStream<S> {
    /// Wrap `inner` under `script`.
    pub fn new(inner: S, script: std::sync::Arc<NetScript>) -> Self {
        FaultStream { inner, script }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

fn injected(kind: NetFaultKind) -> io::Error {
    let ek = match kind {
        NetFaultKind::Stall => io::ErrorKind::TimedOut,
        NetFaultKind::Reset => io::ErrorKind::ConnectionReset,
        _ => io::ErrorKind::ConnectionAborted,
    };
    io::Error::new(ek, format!("injected network fault: {kind}"))
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let (idx, fault) = self.script.fire(NetOp::Read);
        match fault {
            Some(k @ (NetFaultKind::Crash | NetFaultKind::Stall | NetFaultKind::Reset)) => {
                self.script.record(idx, NetOp::Read, Some(k), 0);
                Err(injected(k))
            }
            // All degradation kinds fragment the read to one byte; the
            // direction-agnostic plan may land a write kind here.
            Some(k) => {
                let n = self.inner.read(&mut buf[..1])?;
                self.script.record(idx, NetOp::Read, Some(k), n);
                Ok(n)
            }
            None => {
                let n = self.inner.read(buf)?;
                self.script.record(idx, NetOp::Read, None, n);
                Ok(n)
            }
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let (idx, fault) = self.script.fire(NetOp::Write);
        match fault {
            Some(k @ (NetFaultKind::Crash | NetFaultKind::Stall | NetFaultKind::Reset)) => {
                self.script.record(idx, NetOp::Write, Some(k), 0);
                Err(injected(k))
            }
            // Partial send: accept at most half the buffer (min 1 byte);
            // `write_all` loops and the bytes still land in order.
            Some(k) => {
                let cut = (buf.len() / 2).max(1);
                let n = self.inner.write(&buf[..cut])?;
                self.script.record(idx, NetOp::Write, Some(k), n);
                Ok(n)
            }
            None => {
                let n = self.inner.write(buf)?;
                self.script.record(idx, NetOp::Write, None, n);
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.script.is_crashed() {
            return Err(injected(NetFaultKind::Crash));
        }
        self.inner.flush()
    }
}

/// An absolute wall-clock budget for one unit of work, threaded from the
/// connection loop through session-lock waits and command execution.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Time left, or `None` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.checked_duration_since(Instant::now())
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn faulted_copy(
        input: &[u8],
        plans: Vec<NetFaultPlan>,
    ) -> (Arc<NetScript>, io::Result<Vec<u8>>) {
        let script = Arc::new(NetScript::with_plan(plans));
        let mut reader = FaultStream::new(io::Cursor::new(input.to_vec()), Arc::clone(&script));
        let mut writer = FaultStream::new(Vec::new(), Arc::clone(&script));
        let mut out = Vec::new();
        let result = io::copy(&mut reader, &mut out)
            .and_then(|_| writer.write_all(&out).map(|()| writer.inner));
        (script, result)
    }

    #[test]
    fn clean_script_is_transparent() {
        let (script, out) = faulted_copy(b"hello world", vec![]);
        assert_eq!(out.unwrap(), b"hello world");
        assert!(script.ops_seen() > 0);
        assert_eq!(script.faults_fired(), 0);
    }

    #[test]
    fn short_reads_and_writes_degrade_without_data_loss() {
        for kind in [NetFaultKind::ShortRead, NetFaultKind::ShortWrite] {
            let plans = (0..64)
                .map(|i| NetFaultPlan { at_op: i, kind })
                .collect::<Vec<_>>();
            let (script, out) = faulted_copy(b"the bytes all arrive", plans);
            assert_eq!(out.unwrap(), b"the bytes all arrive", "{kind}");
            assert!(script.faults_fired() > 0, "{kind} never fired");
        }
    }

    #[test]
    fn slow_drip_is_sticky_and_fragmenting() {
        let script = Arc::new(NetScript::with_plan(vec![NetFaultPlan {
            at_op: 0,
            kind: NetFaultKind::SlowDrip,
        }]));
        let mut reader = FaultStream::new(io::Cursor::new(b"abcdef".to_vec()), Arc::clone(&script));
        let mut buf = [0u8; 4];
        for expect in [b'a', b'b', b'c'] {
            let n = reader.read(&mut buf).unwrap();
            assert_eq!((n, buf[0]), (1, expect), "dripped reads are 1 byte");
        }
        script.reboot();
        assert!(reader.read(&mut buf).unwrap() > 1, "reboot clears the drip");
    }

    #[test]
    fn stall_and_reset_surface_the_right_error_kinds() {
        for (kind, ek) in [
            (NetFaultKind::Stall, io::ErrorKind::TimedOut),
            (NetFaultKind::Reset, io::ErrorKind::ConnectionReset),
        ] {
            let script = Arc::new(NetScript::with_plan(vec![NetFaultPlan { at_op: 0, kind }]));
            let mut reader = FaultStream::new(io::Cursor::new(b"x".to_vec()), script);
            assert_eq!(reader.read(&mut [0u8; 8]).unwrap_err().kind(), ek, "{kind}");
        }
    }

    #[test]
    fn crash_poisons_every_stream_until_reboot() {
        let script = Arc::new(NetScript::with_plan(vec![NetFaultPlan {
            at_op: 1,
            kind: NetFaultKind::Crash,
        }]));
        let mut a = FaultStream::new(io::Cursor::new(b"aa".to_vec()), Arc::clone(&script));
        let mut b = FaultStream::new(Vec::new(), Arc::clone(&script));
        assert!(a.read(&mut [0u8; 1]).is_ok()); // op 0
        assert_eq!(
            a.read(&mut [0u8; 1]).unwrap_err().kind(), // op 1: crash fires
            io::ErrorKind::ConnectionAborted
        );
        assert!(b.write(b"x").is_err(), "crash is global across streams");
        assert!(script.is_crashed());
        script.reboot();
        assert!(b.write(b"x").is_ok(), "reboot restores service");
    }

    #[test]
    fn deadlines_expire() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(59));
        let z = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(z.expired());
        assert!(z.remaining().is_none());
    }
}
