//! A minimal, strict HTTP/1.1 framing layer over blocking byte streams.
//!
//! The build box is offline, so there is no tokio/hyper; this module is
//! the smallest parser that can speak the server's JSON protocol safely.
//! It is deliberately *strict* — the input is hostile by assumption, and
//! every deviation is a typed [`HttpError`] the connection loop turns
//! into a 4xx/5xx response, never a panic and never a wedged connection:
//!
//! * request line and each header line are capped at [`MAX_LINE_BYTES`];
//! * at most [`MAX_HEADERS`] headers;
//! * bodies require an exact `Content-Length` (capped by the caller);
//!   `Transfer-Encoding` is refused as 501 — chunked framing is a
//!   smuggling surface this protocol does not need;
//! * only `HTTP/1.1` is accepted, and keep-alive follows its defaults
//!   (persistent unless `Connection: close`).
//!
//! The parser reads from any [`BufRead`], so the exact same code path
//! serves TCP sockets and the in-process `&[u8]` entry point the load
//! generator and fuzz tests drive.

use std::io::{BufRead, Read, Write};

/// Cap on the request line and on each header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Cap on the number of headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target, e.g. `/api/session/1f/command`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A framing-level refusal: the bytes on the wire are not a request this
/// server accepts. The connection loop answers with the matching status
/// and closes (framing errors poison the stream — there is no reliable
/// way to find the next request boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — malformed request line, header, or length field; truncated
    /// mid-request.
    BadRequest(String),
    /// 413 — declared body larger than the server's cap.
    PayloadTooLarge(String),
    /// 501 — a framing feature this server deliberately refuses
    /// (`Transfer-Encoding`, non-1.1 versions).
    NotImplemented(String),
}

impl HttpError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::NotImplemented(_) => 501,
        }
    }

    /// The human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m)
            | HttpError::PayloadTooLarge(m)
            | HttpError::NotImplemented(m) => m,
        }
    }
}

/// What one attempt to read a request from the stream produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A well-formed request.
    Request(Request),
    /// Clean end of stream before any request byte — the client hung up
    /// between requests; not an error.
    Eof,
    /// Malformed bytes: answer with `error.status()` and close.
    Error(HttpError),
}

fn bad(msg: impl Into<String>) -> ReadOutcome {
    ReadOutcome::Error(HttpError::BadRequest(msg.into()))
}

/// Read one line (terminated by `\n`, with an optional preceding `\r`)
/// into `buf`, enforcing the line cap. Returns the line without its
/// terminator, or `None` on EOF with zero bytes read.
fn read_line<R: BufRead>(
    r: &mut R,
    buf: &mut Vec<u8>,
) -> std::io::Result<Result<Option<Vec<u8>>, HttpError>> {
    buf.clear();
    // `take` bounds how much one line can pull regardless of content, so
    // a terminator-free flood cannot grow the buffer past the cap.
    let mut limited = r.take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if buf.last() != Some(&b'\n') {
        let why = if n > MAX_LINE_BYTES {
            "line exceeds the 8 KiB cap"
        } else {
            "stream ended mid-line"
        };
        return Ok(Err(HttpError::BadRequest(why.into())));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Ok(Some(buf.clone())))
}

/// Read one request from the stream.
///
/// `max_body_bytes` caps the declared `Content-Length`. The outer
/// `io::Result` carries *transport* failures (reset, timeout) — the
/// connection is simply dropped on those; everything protocol-shaped is
/// inside [`ReadOutcome`].
pub fn read_request<R: BufRead>(r: &mut R, max_body_bytes: usize) -> std::io::Result<ReadOutcome> {
    let mut buf = Vec::with_capacity(256);

    let line = match read_line(r, &mut buf)? {
        Ok(None) => return Ok(ReadOutcome::Eof),
        Ok(Some(line)) => line,
        Err(e) => return Ok(ReadOutcome::Error(e)),
    };
    let line = match std::str::from_utf8(&line) {
        Ok(s) => s,
        Err(_) => return Ok(bad("request line is not UTF-8")),
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Ok(bad(format!("malformed request line {line:?}"))),
    };
    if version != "HTTP/1.1" {
        return Ok(ReadOutcome::Error(HttpError::NotImplemented(format!(
            "version {version:?}; only HTTP/1.1 is served"
        ))));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Ok(bad(format!("malformed method {method:?}")));
    }
    if !path.starts_with('/') {
        return Ok(bad(format!("request target {path:?} is not absolute")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(r, &mut buf)? {
            Ok(None) => return Ok(bad("stream ended inside the header block")),
            Ok(Some(line)) => line,
            Err(e) => return Ok(ReadOutcome::Error(e)),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Ok(bad(format!("more than {MAX_HEADERS} headers")));
        }
        let line = match std::str::from_utf8(&line) {
            Ok(s) => s,
            Err(_) => return Ok(bad("header line is not UTF-8")),
        };
        let Some((name, value)) = line.split_once(':') else {
            return Ok(bad(format!("header line {line:?} has no colon")));
        };
        if name.is_empty() || name.contains(' ') {
            return Ok(bad(format!("malformed header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Ok(ReadOutcome::Error(HttpError::NotImplemented(
            "Transfer-Encoding is not served; send Content-Length".into(),
        )));
    }

    let mut body = Vec::new();
    let lengths: Vec<&str> = headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    match lengths.as_slice() {
        [] => {}
        [one] => {
            let n: usize = match one.parse() {
                Ok(n) => n,
                Err(_) => return Ok(bad(format!("unparseable Content-Length {one:?}"))),
            };
            if n > max_body_bytes {
                return Ok(ReadOutcome::Error(HttpError::PayloadTooLarge(format!(
                    "body of {n} bytes exceeds the {max_body_bytes}-byte cap"
                ))));
            }
            body.resize(n, 0);
            if let Err(e) = r.read_exact(&mut body) {
                // A clean EOF mid-body is a framing error (the client
                // walked away from its own declared length); anything
                // else — a stall hitting the read timeout, a reset — is
                // a transport condition for the connection loop to
                // classify (408 vs. silent close).
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    return Ok(bad("stream ended before the declared body length"));
                }
                return Err(e);
            }
        }
        _ => return Ok(bad("conflicting Content-Length headers")),
    }

    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The JSON body.
    pub body: Vec<u8>,
    /// Whether to close the connection after writing.
    pub close: bool,
    /// Emit a `Retry-After: <seconds>` header (backpressure refusals).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            body: body.into(),
            close: false,
            retry_after: None,
        }
    }

    /// Mark this response as connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attach (or clear) a `Retry-After` hint, in seconds.
    pub fn with_retry_after(mut self, seconds: Option<u64>) -> Self {
        self.retry_after = seconds;
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        408 => "Request Timeout",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serialize a response to the stream (status line, `Content-Type`,
/// `Content-Length`, optional `Retry-After`, `Connection`, blank line,
/// body). The head and body are buffered into one write so a response is
/// either absent or a single contiguous byte run from the transport's
/// point of view — bounded by the body cap, never streamed.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    let retry = resp
        .retry_after
        .map(|s| format!("retry-after: {s}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{retry}connection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" },
    );
    let mut frame = Vec::with_capacity(head.len() + resp.body.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(&resp.body);
    w.write_all(&frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut std::io::Cursor::new(bytes), 1024).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /api/session HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\n{\"a\"";
        match read(raw) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/api/session");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"{\"a\"");
                assert!(!req.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let raw = b"GET /api/healthz HTTP/1.1\nhost: x\n\n";
        assert!(matches!(read(raw), ReadOutcome::Request(_)));
    }

    #[test]
    fn eof_before_any_byte_is_clean() {
        assert_eq!(read(b""), ReadOutcome::Eof);
    }

    #[test]
    fn truncations_and_garbage_are_400() {
        for raw in [
            &b"GET /x HTTP/1.1\r\nhost"[..], // mid-header EOF
            b"GET /x HTTP/1.1\r\n",          // no blank line
            b"GARBAGE\r\n\r\n",
            b"GET  HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: pony\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\n12345",
            b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
            b"\xff\xfe\r\n\r\n",
        ] {
            match read(raw) {
                ReadOutcome::Error(HttpError::BadRequest(_)) => {}
                other => panic!("{:?} gave {other:?}", String::from_utf8_lossy(raw)),
            }
        }
    }

    #[test]
    fn version_and_transfer_encoding_are_501() {
        for raw in [
            &b"GET /x HTTP/1.0\r\n\r\n"[..],
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            match read(raw) {
                ReadOutcome::Error(HttpError::NotImplemented(_)) => {}
                other => panic!("{:?} gave {other:?}", String::from_utf8_lossy(raw)),
            }
        }
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
        match read(raw) {
            ReadOutcome::Error(HttpError::PayloadTooLarge(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_lines_are_bounded() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 100_000));
        // No terminator ever arrives; the cap must trip, not the memory.
        match read(&raw) {
            ReadOutcome::Error(HttpError::BadRequest(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            read(&raw),
            ReadOutcome::Error(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi".to_vec();
        let mut cur = std::io::Cursor::new(raw);
        match read_request(&mut cur, 1024).unwrap() {
            ReadOutcome::Request(r) => assert_eq!(r.path, "/a"),
            other => panic!("{other:?}"),
        }
        match read_request(&mut cur, 1024).unwrap() {
            ReadOutcome::Request(r) => {
                assert_eq!(r.path, "/b");
                assert_eq!(r.body, b"hi");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(read_request(&mut cur, 1024).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn responses_frame_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, br#"{"ok":true}"#.to_vec())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::json(400, &b"{}"[..]).closing()).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn retry_after_header_is_emitted_when_set() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::json(503, &b"{}"[..]).with_retry_after(Some(2)),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, &Response::json(408, &b"{}"[..])).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
        assert!(!text.contains("retry-after"), "{text}");
    }
}
