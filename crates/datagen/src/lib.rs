//! Seeded synthetic datasets reproducing the paper's experimental workloads.
//!
//! The paper evaluates on two datasets we cannot redistribute:
//!
//! * **MovieLens 100K** (§7.1–§7.3, §8) — joined and materialized into a
//!   33-attribute universal "RatingTable". [`movielens`] generates a
//!   schema-compatible table with the same shape (user demographics ×
//!   movie genres/periods × ratings) and *planted high-value patterns* so
//!   that the qualitative behaviour of Example 1.1 — e.g. male students in
//!   their 20s rating adventure movies of 1975–85 highly while similar
//!   groups rate 1995 movies poorly — reproduces.
//! * **TPC-DS `store_sales`** (§7.4) — a 23-attribute fact table.
//!   [`tpcds`] generates a scaled-down equivalent with Zipfian categorical
//!   domains and a net-profit score.
//!
//! For benchmarks that sweep the answer-relation size `N` directly
//! (Figs. 7–9), [`synthetic`] builds answer relations with exact `n`, `m`,
//! domain sizes and value skew, skipping the SQL pipeline.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod movielens;
pub mod synthetic;
pub mod tpcds;

pub use movielens::MovieLensConfig;
pub use synthetic::SyntheticConfig;
pub use tpcds::StoreSalesConfig;
