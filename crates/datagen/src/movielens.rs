//! MovieLens-100K-like RatingTable generator.
//!
//! Mirrors the schema shape the paper materializes (§7: "Each tuple in this
//! rating table has 33 attributes of three types: binary (e.g., whether or
//! not the movie is a comedy), numeric (e.g., age of the user), and
//! categorical (e.g., occupation of the user)") and plants value structure
//! so Example 1.1's qualitative findings hold on the synthetic data.

use qagview_common::rng::{child_seed, seeded, weighted_index, Zipf};
use qagview_common::Result;
use qagview_storage::{Cell, ColumnType, Schema, Table, TableBuilder};
use rand::rngs::StdRng;
use rand::RngExt;

/// The 19 MovieLens-100K genre flags.
pub const GENRES: [&str; 19] = [
    "unknown",
    "action",
    "adventure",
    "animation",
    "children",
    "comedy",
    "crime",
    "documentary",
    "drama",
    "fantasy",
    "film_noir",
    "horror",
    "musical",
    "mystery",
    "romance",
    "sci_fi",
    "thriller",
    "war",
    "western",
];

/// The 21 MovieLens-100K occupations.
pub const OCCUPATIONS: [&str; 21] = [
    "Student",
    "Programmer",
    "Engineer",
    "Educator",
    "Librarian",
    "Writer",
    "Executive",
    "Administrator",
    "Artist",
    "Technician",
    "Marketing",
    "Entertainment",
    "Healthcare",
    "Scientist",
    "Lawyer",
    "Retired",
    "Salesman",
    "Doctor",
    "Homemaker",
    "Other",
    "None",
];

/// US regions used for the synthetic user zip attribute.
pub const REGIONS: [&str; 5] = ["Northeast", "Southeast", "Midwest", "Southwest", "West"];

/// Weekday names for the rating-timestamp attribute.
pub const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Generator configuration; defaults mirror the 100K dataset's scale.
#[derive(Debug, Clone, Copy)]
pub struct MovieLensConfig {
    /// Number of users (MovieLens 100K: 943).
    pub users: usize,
    /// Number of movies (MovieLens 100K: 1682).
    pub movies: usize,
    /// Number of ratings (MovieLens 100K: 100,000).
    pub ratings: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        MovieLensConfig {
            users: 943,
            movies: 1682,
            ratings: 100_000,
            seed: 42,
        }
    }
}

impl MovieLensConfig {
    /// A small configuration for fast unit tests.
    pub fn small(seed: u64) -> Self {
        MovieLensConfig {
            users: 120,
            movies: 200,
            ratings: 8_000,
            seed,
        }
    }
}

struct User {
    id: i64,
    age: i64,
    gender: &'static str,
    occupation: &'static str,
    region: &'static str,
    premium: bool,
    /// Personal rating bias.
    bias: f64,
}

struct Movie {
    id: i64,
    year: i64,
    genres: [bool; 19],
    bias: f64,
}

fn agegrp(age: i64) -> String {
    format!("{}0s", (age / 10).clamp(1, 7))
}

fn hdec(year: i64) -> i64 {
    year - year.rem_euclid(5)
}

fn decade(year: i64) -> i64 {
    year - year.rem_euclid(10)
}

/// The 33-column RatingTable schema.
pub fn rating_schema() -> Schema {
    let mut cols: Vec<(String, ColumnType)> = vec![
        ("user_id".into(), ColumnType::Int),
        ("movie_id".into(), ColumnType::Int),
        ("age".into(), ColumnType::Int),
        ("agegrp".into(), ColumnType::Str),
        ("gender".into(), ColumnType::Str),
        ("occupation".into(), ColumnType::Str),
        ("region".into(), ColumnType::Str),
        ("premium".into(), ColumnType::Bool),
        ("year".into(), ColumnType::Int),
        ("decade".into(), ColumnType::Int),
        ("hdec".into(), ColumnType::Int),
        ("month".into(), ColumnType::Int),
        ("weekday".into(), ColumnType::Str),
        ("rating".into(), ColumnType::Float),
    ];
    for g in GENRES {
        cols.push((format!("genres_{g}"), ColumnType::Bool));
    }
    let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::from_pairs(&refs).expect("static schema is valid")
}

/// The planted rating boost for a (user, movie) pair — the ground-truth
/// structure the summarization should discover.
fn planted_boost(user: &User, movie: &Movie, half_decade: i64) -> f64 {
    let mut boost = 0.0;
    let adventure = movie.genres[2];
    let is_20s = (20..30).contains(&user.age);
    let is_10s = (10..20).contains(&user.age);
    let techie = matches!(user.occupation, "Student" | "Programmer" | "Engineer");
    // High-value planted pattern: young male students/programmers love
    // 1975-1989 adventure movies (Figure 1a's top block).
    if adventure && user.gender == "M" && (is_20s || is_10s) && techie {
        if (1975..=1989).contains(&half_decade) {
            boost += 1.1;
        }
        // ... but mid-90s adventure leaves them cold (Figure 1a's bottom
        // block shares (20s, M) with the top block).
        if half_decade >= 1995 {
            boost -= 0.9;
        }
    }
    // Secondary pattern: educators favour documentaries and dramas.
    if (movie.genres[7] || movie.genres[8]) && user.occupation == "Educator" {
        boost += 0.5;
    }
    // Old westerns age poorly with young viewers.
    if movie.genres[18] && is_10s {
        boost -= 0.5;
    }
    boost
}

/// Seeded streaming row generator over the RatingTable distribution.
///
/// Holds only the (small) materialized user and movie populations plus the
/// rating RNG — `O(users + movies)` memory regardless of how many rating
/// rows are drawn, so a 5M-row table can be built batch by batch without
/// ever materializing 5M `Vec<Cell>` rows at once. The row sequence for a
/// given [`MovieLensConfig`] is exactly the one [`generate`] produces:
/// `generate` is a thin eager collector over this iterator, so streaming
/// and eager construction are identical by construction, not by test.
pub struct RatingRows {
    users: Vec<User>,
    movies: Vec<Movie>,
    rating_rng: StdRng,
    user_pick: Zipf,
    movie_pick: Zipf,
    remaining: usize,
}

/// Stream the RatingTable's rows for `cfg`, in `O(users + movies)` memory.
pub fn iter_rows(cfg: &MovieLensConfig) -> RatingRows {
    let mut user_rng = seeded(child_seed(cfg.seed, "users"));
    let mut movie_rng = seeded(child_seed(cfg.seed, "movies"));
    let rating_rng = seeded(child_seed(cfg.seed, "ratings"));

    let users = gen_users(cfg.users, &mut user_rng);
    let movies = gen_movies(cfg.movies, &mut movie_rng);
    // Popularity skew: a few movies and users account for most ratings.
    let user_pick = Zipf::new(users.len(), 0.8);
    let movie_pick = Zipf::new(movies.len(), 1.0);
    RatingRows {
        users,
        movies,
        rating_rng,
        user_pick,
        movie_pick,
        remaining: cfg.ratings,
    }
}

impl Iterator for RatingRows {
    type Item = Vec<Cell>;

    fn next(&mut self) -> Option<Vec<Cell>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let user = &self.users[self.user_pick.sample(&mut self.rating_rng)];
        let movie = &self.movies[self.movie_pick.sample(&mut self.rating_rng)];
        let half_decade = hdec(movie.year);
        let mean = 3.3 + user.bias + movie.bias + planted_boost(user, movie, half_decade);
        let noise: f64 = self.rating_rng.random::<f64>() * 2.0 - 1.0;
        let rating = (mean + noise).round().clamp(1.0, 5.0);
        let month = self.rating_rng.random_range(1..=12i64);
        let weekday = WEEKDAYS[self.rating_rng.random_range(0..WEEKDAYS.len())];

        let mut row: Vec<Cell> = Vec::with_capacity(14 + GENRES.len());
        row.extend([
            Cell::Int(user.id),
            Cell::Int(movie.id),
            Cell::Int(user.age),
            agegrp(user.age).into(),
            user.gender.into(),
            user.occupation.into(),
            user.region.into(),
            user.premium.into(),
            Cell::Int(movie.year),
            Cell::Int(decade(movie.year)),
            Cell::Int(half_decade),
            Cell::Int(month),
            weekday.into(),
            Cell::Float(rating),
        ]);
        for g in 0..GENRES.len() {
            row.push(movie.genres[g].into());
        }
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RatingRows {}

/// Generate the RatingTable eagerly by collecting [`iter_rows`].
pub fn generate(cfg: &MovieLensConfig) -> Result<Table> {
    let mut builder = TableBuilder::with_capacity(rating_schema(), cfg.ratings);
    for row in iter_rows(cfg) {
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

fn gen_users(n: usize, rng: &mut StdRng) -> Vec<User> {
    // Age mixture matching MovieLens' young skew.
    let age_brackets: [(i64, i64, f64); 6] = [
        (10, 19, 0.12),
        (20, 29, 0.40),
        (30, 39, 0.25),
        (40, 49, 0.12),
        (50, 59, 0.08),
        (60, 73, 0.03),
    ];
    let weights: Vec<f64> = age_brackets.iter().map(|b| b.2).collect();
    // Occupation skew: students dominate.
    let occ_weights: Vec<f64> = OCCUPATIONS
        .iter()
        .map(|&o| match o {
            "Student" => 5.0,
            "Programmer" | "Engineer" | "Educator" => 2.5,
            "Other" => 2.0,
            _ => 1.0,
        })
        .collect();
    (0..n)
        .map(|i| {
            let bracket = age_brackets[weighted_index(rng, &weights)];
            let age = rng.random_range(bracket.0..=bracket.1);
            let gender = if rng.random::<f64>() < 0.71 { "M" } else { "F" };
            let occupation = OCCUPATIONS[weighted_index(rng, &occ_weights)];
            User {
                id: i64::try_from(i).expect("user count fits i64") + 1,
                age,
                gender,
                occupation,
                region: REGIONS[rng.random_range(0..REGIONS.len())],
                premium: rng.random::<f64>() < 0.2,
                bias: rng.random::<f64>() * 0.6 - 0.3,
            }
        })
        .collect()
}

fn gen_movies(n: usize, rng: &mut StdRng) -> Vec<Movie> {
    // Release years skew modern, matching the 100K dataset.
    let year_brackets: [(i64, i64, f64); 5] = [
        (1930, 1959, 0.05),
        (1960, 1974, 0.10),
        (1975, 1989, 0.25),
        (1990, 1994, 0.25),
        (1995, 1998, 0.35),
    ];
    let weights: Vec<f64> = year_brackets.iter().map(|b| b.2).collect();
    (0..n)
        .map(|i| {
            let bracket = year_brackets[weighted_index(rng, &weights)];
            let year = rng.random_range(bracket.0..=bracket.1);
            let mut genres = [false; 19];
            let count = 1
                + usize::from(rng.random::<f64>() < 0.55)
                + usize::from(rng.random::<f64>() < 0.2);
            for _ in 0..count {
                // Skip "unknown" (index 0) for the main draw.
                genres[rng.random_range(1..GENRES.len())] = true;
            }
            if !genres.iter().any(|&g| g) {
                genres[0] = true;
            }
            Movie {
                id: i64::try_from(i).expect("movie count fits i64") + 1,
                year,
                genres,
                bias: rng.random::<f64>() * 0.6 - 0.3,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_common::Value;

    #[test]
    fn deterministic_given_seed() {
        let cfg = MovieLensConfig::small(7);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        for r in [0usize, 100, 4999] {
            for c in 0..a.schema().arity() {
                assert_eq!(
                    a.display_value(r, c),
                    b.display_value(r, c),
                    "row {r} col {c}"
                );
            }
        }
    }

    #[test]
    fn schema_has_33_attributes() {
        assert_eq!(rating_schema().arity(), 14 + 19);
        assert_eq!(rating_schema().arity(), 33);
    }

    #[test]
    fn ratings_are_in_range() {
        let t = generate(&MovieLensConfig::small(1)).unwrap();
        let rating_col = t.schema().index_of("rating").unwrap();
        for r in 0..t.num_rows() {
            match t.value(r, rating_col) {
                Value::Float(x) => assert!((1.0..=5.0).contains(&x), "rating {x}"),
                other => panic!("unexpected type {other:?}"),
            }
        }
    }

    #[test]
    fn derived_attributes_consistent() {
        let t = generate(&MovieLensConfig::small(3)).unwrap();
        let year_c = t.schema().index_of("year").unwrap();
        let hdec_c = t.schema().index_of("hdec").unwrap();
        let dec_c = t.schema().index_of("decade").unwrap();
        let age_c = t.schema().index_of("age").unwrap();
        let agegrp_c = t.schema().index_of("agegrp").unwrap();
        for r in 0..t.num_rows().min(500) {
            let year = t.value(r, year_c).as_i64().unwrap();
            assert_eq!(t.value(r, hdec_c).as_i64().unwrap(), hdec(year));
            assert_eq!(t.value(r, dec_c).as_i64().unwrap(), decade(year));
            let age = t.value(r, age_c).as_i64().unwrap();
            assert_eq!(t.display_value(r, agegrp_c), agegrp(age));
        }
    }

    #[test]
    fn planted_pattern_visible_in_aggregates() {
        // Average adventure rating of young male techies on 1975-89 movies
        // must exceed that of 1995+ movies by a solid margin.
        let t = generate(&MovieLensConfig {
            ratings: 40_000,
            ..MovieLensConfig::small(1)
        })
        .unwrap();
        let s = t.schema();
        let (adv, gen, age, occ, year, rating) = (
            s.index_of("genres_adventure").unwrap(),
            s.index_of("gender").unwrap(),
            s.index_of("agegrp").unwrap(),
            s.index_of("occupation").unwrap(),
            s.index_of("year").unwrap(),
            s.index_of("rating").unwrap(),
        );
        let mut old = (0.0, 0usize);
        let mut new = (0.0, 0usize);
        for r in 0..t.num_rows() {
            if t.value(r, adv) != Value::Bool(true)
                || t.display_value(r, gen) != "M"
                || !matches!(t.display_value(r, age).as_str(), "10s" | "20s")
                || !matches!(
                    t.display_value(r, occ).as_str(),
                    "Student" | "Programmer" | "Engineer"
                )
            {
                continue;
            }
            let y = t.value(r, year).as_i64().unwrap();
            let v = t.value(r, rating).as_f64().unwrap();
            if (1975..=1989).contains(&y) {
                old.0 += v;
                old.1 += 1;
            } else if y >= 1995 {
                new.0 += v;
                new.1 += 1;
            }
        }
        assert!(
            old.1 > 50 && new.1 > 50,
            "need data in both periods: {} {}",
            old.1,
            new.1
        );
        let old_avg = old.0 / old.1 as f64;
        let new_avg = new.0 / new.1 as f64;
        assert!(
            old_avg > new_avg + 0.8,
            "planted pattern too weak: old {old_avg:.2} vs new {new_avg:.2}"
        );
    }

    #[test]
    fn streaming_rows_match_eager_generate_across_batch_boundaries() {
        // Pushing the streamed rows in uneven batches (as the N-scaling
        // bench does for 5M-row tables) must produce the identical table
        // `generate` builds in one pass, and the iterator's length
        // contract must be exact.
        let cfg = MovieLensConfig::small(11);
        let eager = generate(&cfg).unwrap();
        let mut rows = iter_rows(&cfg);
        assert_eq!(rows.len(), cfg.ratings);
        let mut builder = TableBuilder::with_capacity(rating_schema(), cfg.ratings);
        let mut pushed = 0usize;
        for batch in [1usize, 999, 4096, cfg.ratings] {
            for _ in 0..batch {
                let Some(row) = rows.next() else { break };
                builder.push_row(row).unwrap();
                pushed += 1;
            }
        }
        assert_eq!(pushed, cfg.ratings);
        assert!(rows.next().is_none(), "iterator is exhausted");
        let streamed = builder.finish();
        assert_eq!(streamed.num_rows(), eager.num_rows());
        for r in [0usize, 1, 998, 999, 5094, cfg.ratings - 1] {
            for c in 0..eager.schema().arity() {
                assert_eq!(
                    streamed.display_value(r, c),
                    eager.display_value(r, c),
                    "row {r} col {c}"
                );
            }
        }
    }

    #[test]
    fn agegrp_clamps_extremes() {
        assert_eq!(agegrp(7), "10s");
        assert_eq!(agegrp(15), "10s");
        assert_eq!(agegrp(29), "20s");
        assert_eq!(agegrp(95), "70s");
    }

    #[test]
    fn hdec_and_decade_windows() {
        assert_eq!(hdec(1994), 1990);
        assert_eq!(hdec(1995), 1995);
        assert_eq!(hdec(1999), 1995);
        assert_eq!(decade(1999), 1990);
        assert_eq!(decade(1980), 1980);
    }
}
