//! Direct answer-relation generator with exact size control.
//!
//! Figures 7–9 sweep the answer-relation size `N` directly (927 / 2087 /
//! 6955 / 47361). Recreating those exact `N`s through SQL would require
//! brittle HAVING-threshold calibration, so the benchmark harness generates
//! answer relations head-on: `n` distinct grouped tuples over `m`
//! categorical attributes with configurable domain sizes and a value model
//! with planted high-value patterns (so the summarization problem stays
//! non-trivial at every size).

use qagview_common::rng::{child_seed, seeded};
use qagview_common::Result;
use qagview_lattice::{AnswerSet, AnswerSetBuilder};
use rand::RngExt;

/// Configuration for [`answer_set`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Exact number of answer tuples `n`.
    pub n: usize,
    /// Per-attribute domain sizes (length = `m`).
    pub domain_sizes: Vec<usize>,
    /// Number of planted high-value patterns.
    pub planted: usize,
    /// Base score range (scores are drawn uniformly then boosted).
    pub base: (f64, f64),
    /// Boost added when a tuple matches a planted pattern.
    pub boost: f64,
    /// Master seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A sensible default for an `n`-tuple, `m`-attribute relation:
    /// MovieLens-like *mixed* domain sizes (a couple of large categorical
    /// attributes, several mid-sized ones, a few binary-ish flags), scaled
    /// up until the product space holds `4n` distinct tuples comfortably;
    /// three planted patterns; scores in 1..5.
    pub fn new(n: usize, m: usize, seed: u64) -> Self {
        const CYCLE: [usize; 6] = [21, 12, 2, 8, 5, 3];
        let mut domain_sizes: Vec<usize> = (0..m).map(|i| CYCLE[i % CYCLE.len()]).collect();
        let target = (4 * n.max(1)) as f64;
        // Grow the larger attributes first until the space is big enough.
        let mut grow = 0usize;
        while domain_sizes.iter().map(|&d| d as f64).product::<f64>() < target {
            let i = grow % m;
            domain_sizes[i] = (domain_sizes[i] as f64 * 1.6).ceil() as usize;
            grow += 1;
        }
        SyntheticConfig {
            n,
            domain_sizes,
            planted: 3,
            base: (1.0, 4.0),
            boost: 1.0,
            seed,
        }
    }
}

/// Generate an answer relation per `cfg`.
///
/// # Errors
///
/// Fails if the attribute product space cannot hold `n` distinct tuples.
pub fn answer_set(cfg: &SyntheticConfig) -> Result<AnswerSet> {
    let m = cfg.domain_sizes.len();
    let space: f64 = cfg.domain_sizes.iter().map(|&d| d as f64).product();
    if space < cfg.n as f64 {
        return Err(qagview_common::QagError::param(format!(
            "product space {space} cannot hold n={} distinct tuples",
            cfg.n
        )));
    }
    let mut rng = seeded(child_seed(cfg.seed, "synthetic-answers"));

    // Per-attribute-value additive biases: grouped aggregates of real data
    // carry signal at the granularity of individual attribute values
    // (certain occupations / periods / brands rate systematically higher),
    // which is what makes generalized clusters informative at every depth.
    // A few attributes are strongly predictive, the rest weak.
    let strength_cycle = [0.9, 0.55, 0.3, 0.15];
    let biases: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let strength = strength_cycle[i % strength_cycle.len()];
            (0..cfg.domain_sizes[i])
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * strength)
                .collect()
        })
        .collect();

    // Planted patterns on top: each fixes a random subset of ~m/2
    // attributes and boosts matching tuples.
    let planted: Vec<Vec<Option<u32>>> = (0..cfg.planted)
        .map(|_| {
            (0..m)
                .map(|i| {
                    if rng.random::<f64>() < 0.5 {
                        Some(rng.random_range(0..cfg.domain_sizes[i] as u32))
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();

    let mut seen: std::collections::HashSet<Vec<u32>> = Default::default();
    let mut builder = AnswerSetBuilder::new((0..m).map(|i| format!("a{i}")).collect());
    while seen.len() < cfg.n {
        let codes: Vec<u32> = (0..m)
            .map(|i| rng.random_range(0..cfg.domain_sizes[i] as u32))
            .collect();
        if !seen.insert(codes.clone()) {
            continue;
        }
        let mut val = cfg.base.0 + rng.random::<f64>() * (cfg.base.1 - cfg.base.0);
        for (i, &c) in codes.iter().enumerate() {
            val += biases[i][c as usize];
        }
        for pattern in &planted {
            let matches = pattern
                .iter()
                .zip(&codes)
                .all(|(slot, &c)| slot.is_none_or(|v| v == c));
            if matches {
                val += cfg.boost;
            }
        }
        // Quantize to a dyadic grid (multiples of 2⁻²⁰, a ~1e-6
        // perturbation): partial sums and incremental float updates over
        // such values are exact in f64, so differential harnesses can
        // assert *byte* identity between evaluation strategies on this
        // workload — same trick as the delta-cache unit tests.
        let val = (val * f64::from(1 << 20)).round() / f64::from(1 << 20);
        let texts: Vec<String> = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| format!("v{i}_{c}"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        builder.push(&refs, val)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_n_and_m() {
        let cfg = SyntheticConfig::new(500, 6, 11);
        let s = answer_set(&cfg).unwrap();
        assert_eq!(s.len(), 500);
        assert_eq!(s.arity(), 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig::new(200, 4, 3);
        let a = answer_set(&cfg).unwrap();
        let b = answer_set(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for t in 0..a.len() as u32 {
            assert_eq!(a.tuple(t), b.tuple(t));
            assert_eq!(a.val(t), b.val(t));
        }
    }

    #[test]
    fn values_sorted_desc() {
        let s = answer_set(&SyntheticConfig::new(300, 5, 9)).unwrap();
        for w in s.vals().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rejects_impossible_space() {
        let cfg = SyntheticConfig {
            n: 100,
            domain_sizes: vec![2, 2],
            planted: 0,
            base: (0.0, 1.0),
            boost: 0.0,
            seed: 0,
        };
        assert!(answer_set(&cfg).is_err());
    }

    #[test]
    fn planted_patterns_create_value_structure() {
        // With a large boost, the top of the ranking should be dominated by
        // pattern-matching tuples — i.e. top-tuple attribute values repeat.
        let cfg = SyntheticConfig {
            boost: 3.0,
            ..SyntheticConfig::new(1000, 6, 21)
        };
        let s = answer_set(&cfg).unwrap();
        // Count distinct values per attribute among the top 30 tuples; at
        // least one attribute should be heavily concentrated.
        let mut min_distinct = usize::MAX;
        for i in 0..s.arity() {
            let distinct: std::collections::HashSet<u32> =
                (0..30u32).map(|t| s.tuple(t)[i]).collect();
            min_distinct = min_distinct.min(distinct.len());
        }
        assert!(
            min_distinct <= 4,
            "expected concentration in top tuples, min distinct = {min_distinct}"
        );
    }

    #[test]
    fn default_domain_sizing_has_headroom() {
        let cfg = SyntheticConfig::new(47_361, 8, 1);
        let space: f64 = cfg.domain_sizes.iter().map(|&d| d as f64).product();
        assert!(space >= 4.0 * 47_361.0);
    }
}
