//! TPC-DS-like `store_sales` generator (§7.4 scalability workload).
//!
//! The paper materializes the Store Sales table ("23 attributes and
//! 2,880,404 tuples") and aggregates `avg(net_profit)`. This generator
//! produces a schema-compatible fact table at a configurable scale with
//! Zipf-skewed categorical dimensions, so the fig-9 experiments exercise the
//! same answer-relation sizes (`N ≈ 47k` groups) the paper reports.

use qagview_common::rng::{child_seed, seeded, Zipf};
use qagview_common::Result;
use qagview_storage::{Cell, ColumnType, Schema, Table, TableBuilder};
use rand::RngExt;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreSalesConfig {
    /// Number of fact rows (the paper's table has 2,880,404; the default is
    /// a 1/10-scale equivalent that preserves group counts via proportional
    /// domain scaling).
    pub rows: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for StoreSalesConfig {
    fn default() -> Self {
        StoreSalesConfig {
            rows: 288_040,
            seed: 7,
        }
    }
}

impl StoreSalesConfig {
    /// A small configuration for fast unit tests.
    pub fn small(seed: u64) -> Self {
        StoreSalesConfig { rows: 20_000, seed }
    }
}

/// Categorical dimensions: `(name, domain size, zipf skew)`.
const DIMENSIONS: [(&str, usize, f64); 16] = [
    ("store", 60, 0.6),
    ("item_brand", 400, 1.0),
    ("item_category", 10, 0.4),
    ("item_class", 60, 0.7),
    ("customer_state", 50, 0.8),
    ("customer_county", 120, 0.9),
    ("demo_gender", 2, 0.0),
    ("demo_marital", 5, 0.2),
    ("demo_education", 7, 0.3),
    ("demo_credit", 4, 0.2),
    ("promo", 30, 1.1),
    ("channel", 4, 0.5),
    ("quarter", 20, 0.0),
    ("year", 5, 0.0),
    ("month", 12, 0.0),
    ("weekday", 7, 0.0),
];

/// The 23-column store_sales schema: 16 categorical dimensions plus 7
/// numeric measures.
pub fn store_sales_schema() -> Schema {
    let mut cols: Vec<(String, ColumnType)> = Vec::new();
    for (name, _, _) in DIMENSIONS {
        cols.push((name.to_string(), ColumnType::Str));
    }
    for name in [
        "quantity",
        "wholesale_cost",
        "list_price",
        "sales_price",
        "ext_discount",
        "net_paid",
        "net_profit",
    ] {
        cols.push((
            name.to_string(),
            if name == "quantity" {
                ColumnType::Int
            } else {
                ColumnType::Float
            },
        ));
    }
    let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::from_pairs(&refs).expect("static schema is valid")
}

/// Generate the store_sales table.
pub fn generate(cfg: &StoreSalesConfig) -> Result<Table> {
    let mut rng = seeded(child_seed(cfg.seed, "store_sales"));
    let samplers: Vec<Zipf> = DIMENSIONS
        .iter()
        .map(|&(_, n, a)| Zipf::new(n, a))
        .collect();
    // Per-dimension per-value profit bias so group averages vary: brands and
    // promos carry real signal, calendar attributes carry none.
    let biases: Vec<Vec<f64>> = DIMENSIONS
        .iter()
        .map(|&(name, n, _)| {
            let strength = match name {
                "item_brand" | "promo" => 18.0,
                "item_category" | "store" | "channel" => 9.0,
                "customer_state" | "demo_education" => 5.0,
                _ => 0.0,
            };
            (0..n)
                .map(|_| (rng.random::<f64>() - 0.5) * strength)
                .collect()
        })
        .collect();

    let mut builder = TableBuilder::with_capacity(store_sales_schema(), cfg.rows);
    for _ in 0..cfg.rows {
        let mut row: Vec<Cell> = Vec::with_capacity(23);
        let mut profit_mean = 12.0;
        for (d, sampler) in samplers.iter().enumerate() {
            let v = sampler.sample(&mut rng);
            profit_mean += biases[d][v];
            row.push(format!("{}_{v}", DIMENSIONS[d].0).into());
        }
        let quantity = rng.random_range(1..=100i64);
        let wholesale = rng.random::<f64>() * 80.0 + 2.0;
        let list = wholesale * (1.2 + rng.random::<f64>() * 1.3);
        let discount = list * rng.random::<f64>() * 0.4;
        let sales = (list - discount).max(0.0);
        let net_paid = sales * quantity as f64;
        let noise = (rng.random::<f64>() - 0.5) * 60.0;
        let net_profit = profit_mean + noise + (sales - wholesale) * 0.15;
        row.push(Cell::Int(quantity));
        row.push(Cell::Float(wholesale));
        row.push(Cell::Float(list));
        row.push(Cell::Float(discount));
        row.push(Cell::Float(sales));
        row.push(Cell::Float(net_paid));
        row.push(Cell::Float(net_profit));
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_23_attributes() {
        assert_eq!(store_sales_schema().arity(), 23);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = StoreSalesConfig { rows: 500, seed: 3 };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        for r in [0usize, 250, 499] {
            for c in 0..23 {
                assert_eq!(a.display_value(r, c), b.display_value(r, c));
            }
        }
    }

    #[test]
    fn zipf_skew_shows_in_brand_frequencies() {
        let t = generate(&StoreSalesConfig {
            rows: 20_000,
            seed: 1,
        })
        .unwrap();
        let brand = t.schema().index_of("item_brand").unwrap();
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for r in 0..t.num_rows() {
            *counts.entry(t.display_value(r, brand)).or_default() += 1;
        }
        let top = counts.get("item_brand_0").copied().unwrap_or(0);
        let tail = counts.get("item_brand_300").copied().unwrap_or(0);
        assert!(
            top > tail.max(1) * 5,
            "expected heavy brand skew: top={top} tail={tail}"
        );
    }

    #[test]
    fn profit_signal_varies_by_brand() {
        let t = generate(&StoreSalesConfig {
            rows: 30_000,
            seed: 2,
        })
        .unwrap();
        let brand = t.schema().index_of("item_brand").unwrap();
        let profit = t.schema().index_of("net_profit").unwrap();
        let mut sums: std::collections::HashMap<String, (f64, usize)> = Default::default();
        for r in 0..t.num_rows() {
            let e = sums.entry(t.display_value(r, brand)).or_default();
            e.0 += t.value(r, profit).as_f64().unwrap();
            e.1 += 1;
        }
        let avgs: Vec<f64> = sums
            .values()
            .filter(|(_, n)| *n >= 100)
            .map(|(s, n)| s / *n as f64)
            .collect();
        assert!(avgs.len() >= 10, "need enough well-supported brands");
        let min = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = avgs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 4.0,
            "brand profit signal too flat: {min:.1}..{max:.1}"
        );
    }
}
