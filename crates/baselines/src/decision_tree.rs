//! CART-style decision tree — the user study's baseline summarizer (§8).
//!
//! The paper adapts scikit-learn's `DecisionTreeClassifier` to separate the
//! top-`L` tuples from the rest: train a gini-impurity tree with equality
//! splits on the categorical grouping attributes, tune its height so the
//! number of *positive* leaves (majority top-`L`) is as close as possible
//! to — but not above — `k`, and present each positive leaf's root-to-leaf
//! predicate conjunction as a "cluster". The predicates mix `=` and `≠`,
//! which is exactly the extra complexity the user study interrogates.

use qagview_common::{QagError, Result};
use qagview_lattice::{AnswerSet, TupleId};

/// One predicate along a root-to-leaf path: attribute `attr` compared to
/// `code`, positively (`=`) or negatively (`≠`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Attribute index.
    pub attr: usize,
    /// Compared domain code.
    pub code: u32,
    /// `true` for `=`, `false` for `≠`.
    pub equals: bool,
}

/// A positive-leaf rule: the conjunction of predicates plus leaf statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Root-to-leaf predicates.
    pub predicates: Vec<Predicate>,
    /// Top-`L` tuples at the leaf.
    pub positives: usize,
    /// Non-top-`L` tuples at the leaf.
    pub negatives: usize,
    /// Average `val` of all tuples at the leaf.
    pub avg_val: f64,
}

impl Rule {
    /// Whether a tuple satisfies every predicate.
    pub fn matches(&self, codes: &[u32]) -> bool {
        self.predicates
            .iter()
            .all(|p| (codes[p.attr] == p.code) == p.equals)
    }

    /// Complexity = number of predicates (the §8 memorability driver).
    pub fn complexity(&self) -> usize {
        self.predicates.len()
    }

    /// Render with attribute names and domain text.
    pub fn render(&self, answers: &AnswerSet) -> String {
        if self.predicates.is_empty() {
            return "(always)".into();
        }
        let parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                format!(
                    "{} {} {}",
                    answers.attr_names()[p.attr],
                    if p.equals { "=" } else { "≠" },
                    answers.code_text(p.attr, p.code)
                )
            })
            .collect();
        parts.join(" ∧ ")
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        positives: usize,
        negatives: usize,
        sum_val: f64,
    },
    Split {
        pred: Predicate,
        yes: usize,
        no: usize,
    },
}

/// A trained tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    max_depth: usize,
}

fn gini(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Train with gini splits to at most `max_depth` levels. Tuples ranked
    /// `< l` are the positive class.
    pub fn train(answers: &AnswerSet, l: usize, max_depth: usize) -> Result<Self> {
        if l == 0 || l > answers.len() {
            return Err(QagError::param(format!(
                "L={l} out of range 1..={}",
                answers.len()
            )));
        }
        let all: Vec<TupleId> = (0..answers.len() as u32).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            max_depth,
        };
        tree.grow(answers, l, &all, 0);
        Ok(tree)
    }

    fn grow(&mut self, answers: &AnswerSet, l: usize, ids: &[TupleId], depth: usize) -> usize {
        let positives = ids.iter().filter(|&&t| (t as usize) < l).count();
        let negatives = ids.len() - positives;
        let sum_val: f64 = ids.iter().map(|&t| answers.val(t)).sum();
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                positives,
                negatives,
                sum_val,
            });
            nodes.len() - 1
        };
        if depth >= self.max_depth || positives == 0 || negatives == 0 {
            return make_leaf(&mut self.nodes);
        }
        // Best (attr, code) equality split by gini gain.
        let parent_gini = gini(positives as f64, negatives as f64);
        let mut best: Option<(f64, Predicate)> = None;
        for attr in 0..answers.arity() {
            let mut seen: std::collections::BTreeSet<u32> = Default::default();
            for &t in ids {
                seen.insert(answers.tuple(t)[attr]);
            }
            if seen.len() < 2 {
                continue;
            }
            for &code in &seen {
                let mut yp = 0usize;
                let mut yn = 0usize;
                for &t in ids {
                    if answers.tuple(t)[attr] == code {
                        if (t as usize) < l {
                            yp += 1;
                        } else {
                            yn += 1;
                        }
                    }
                }
                let (np, nn) = (positives - yp, negatives - yn);
                let ny = (yp + yn) as f64;
                let nn_total = (np + nn) as f64;
                let n = ids.len() as f64;
                let weighted =
                    ny / n * gini(yp as f64, yn as f64) + nn_total / n * gini(np as f64, nn as f64);
                let gain = parent_gini - weighted;
                if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((
                        gain,
                        Predicate {
                            attr,
                            code,
                            equals: true,
                        },
                    ));
                }
            }
        }
        let Some((_, pred)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let (yes_ids, no_ids): (Vec<TupleId>, Vec<TupleId>) = ids
            .iter()
            .partition(|&&t| answers.tuple(t)[pred.attr] == pred.code);
        let idx = self.nodes.len();
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf {
            positives,
            negatives,
            sum_val,
        });
        let yes = self.grow(answers, l, &yes_ids, depth + 1);
        let no = self.grow(answers, l, &no_ids, depth + 1);
        self.nodes[idx] = Node::Split { pred, yes, no };
        idx
    }

    /// The height limit this tree was trained with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Predict whether a tuple lands in a positive (majority top-`L`) leaf.
    pub fn predict(&self, codes: &[u32]) -> bool {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf {
                    positives,
                    negatives,
                    ..
                } => return positives > negatives,
                Node::Split { pred, yes, no } => {
                    idx = if (codes[pred.attr] == pred.code) == pred.equals {
                        *yes
                    } else {
                        *no
                    };
                }
            }
        }
    }

    /// Positive-leaf rules (the §8 "clusters").
    pub fn rules(&self) -> Vec<Rule> {
        let mut out = Vec::new();
        self.collect_rules(0, &mut Vec::new(), &mut out);
        out
    }

    fn collect_rules(&self, idx: usize, path: &mut Vec<Predicate>, out: &mut Vec<Rule>) {
        match &self.nodes[idx] {
            Node::Leaf {
                positives,
                negatives,
                sum_val,
            } => {
                if positives > negatives {
                    let total = positives + negatives;
                    out.push(Rule {
                        predicates: path.clone(),
                        positives: *positives,
                        negatives: *negatives,
                        avg_val: if total == 0 {
                            0.0
                        } else {
                            sum_val / total as f64
                        },
                    });
                }
            }
            Node::Split { pred, yes, no } => {
                path.push(*pred);
                self.collect_rules(*yes, path, out);
                path.pop();
                path.push(Predicate {
                    equals: false,
                    ..*pred
                });
                self.collect_rules(*no, path, out);
                path.pop();
            }
        }
    }

    /// Number of positive leaves.
    pub fn positive_leaf_count(&self) -> usize {
        self.rules().len()
    }
}

/// The §8 height-tuning: train at increasing depth, keep the deepest tree
/// whose positive-leaf count stays `≤ k` (and as close to `k` as possible).
pub fn fit_for_k(answers: &AnswerSet, l: usize, k: usize) -> Result<DecisionTree> {
    if k == 0 {
        return Err(QagError::param("decision tree baseline requires k >= 1"));
    }
    let mut best: Option<DecisionTree> = None;
    for depth in 1..=(answers.arity() * 4).max(4) {
        let tree = DecisionTree::train(answers, l, depth)?;
        let leaves = tree.positive_leaf_count();
        if leaves > 0 && leaves <= k {
            let better = best
                .as_ref()
                .is_none_or(|b| leaves >= b.positive_leaf_count());
            if better {
                best = Some(tree);
            }
        } else if leaves > k {
            break; // deeper trees only fragment further
        }
    }
    best.ok_or_else(|| QagError::Execution(format!("no tree with 1..={k} positive leaves exists")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    /// Top-3 tuples share a = x; the rest don't.
    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["x", "q"], 8.0).unwrap();
        b.push(&["x", "r"], 7.0).unwrap();
        b.push(&["y", "p"], 3.0).unwrap();
        b.push(&["y", "q"], 2.0).unwrap();
        b.push(&["z", "r"], 1.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn learns_the_separating_attribute() {
        let s = answers();
        let tree = DecisionTree::train(&s, 3, 3).unwrap();
        // Perfect separation on a = x.
        for t in 0..s.len() as u32 {
            assert_eq!(tree.predict(s.tuple(t)), (t as usize) < 3, "tuple {t}");
        }
        let rules = tree.rules();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].render(&s), "a = x");
        assert_eq!(rules[0].positives, 3);
        assert_eq!(rules[0].negatives, 0);
    }

    #[test]
    fn rules_match_their_leaves() {
        let s = answers();
        let tree = DecisionTree::train(&s, 3, 4).unwrap();
        for rule in tree.rules() {
            for t in 0..s.len() as u32 {
                if rule.matches(s.tuple(t)) {
                    assert!(tree.predict(s.tuple(t)), "rule/leaf disagreement on {t}");
                }
            }
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let s = answers();
        let tree = DecisionTree::train(&s, 3, 0).unwrap();
        // Majority is negative (3 vs 3 → not strictly more positives).
        assert_eq!(tree.positive_leaf_count(), 0);
        assert!(!tree.predict(s.tuple(0)));
    }

    #[test]
    fn fit_for_k_respects_budget() {
        let s = answers();
        let tree = fit_for_k(&s, 3, 2).unwrap();
        assert!(tree.positive_leaf_count() >= 1);
        assert!(tree.positive_leaf_count() <= 2);
    }

    #[test]
    fn mixed_leaves_report_avg_val() {
        // Force an impure positive leaf by limiting depth on a harder
        // instance.
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["x", "q"], 8.0).unwrap();
        b.push(&["x", "r"], 1.0).unwrap(); // negative sharing a = x
        b.push(&["y", "p"], 0.5).unwrap();
        let s = b.finish().unwrap();
        let tree = DecisionTree::train(&s, 2, 1).unwrap();
        let rules = tree.rules();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!((r.positives, r.negatives), (2, 1));
        assert!((r.avg_val - 6.0).abs() < 1e-12);
    }

    #[test]
    fn negated_predicates_appear_on_no_branches() {
        // Two positive groups force a path through a ≠ branch.
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["y", "p"], 8.0).unwrap();
        b.push(&["z", "q"], 1.0).unwrap();
        b.push(&["w", "q"], 0.5).unwrap();
        let s = b.finish().unwrap();
        let tree = DecisionTree::train(&s, 2, 3).unwrap();
        let rules = tree.rules();
        assert!(!rules.is_empty());
        for t in 0..2u32 {
            assert!(tree.predict(s.tuple(t)));
        }
        for t in 2..4u32 {
            assert!(!tree.predict(s.tuple(t)));
        }
    }

    #[test]
    fn complexity_counts_predicates() {
        let s = answers();
        let tree = DecisionTree::train(&s, 3, 4).unwrap();
        for rule in tree.rules() {
            assert_eq!(rule.complexity(), rule.predicates.len());
        }
    }

    #[test]
    fn parameter_validation() {
        let s = answers();
        assert!(DecisionTree::train(&s, 0, 2).is_err());
        assert!(DecisionTree::train(&s, 7, 2).is_err());
        assert!(fit_for_k(&s, 3, 0).is_err());
    }
}
