//! Diversified top-`k` (paper App. A.5.2, adapting Qin et al. \[31\]).
//!
//! Select at most `k` *elements* (not patterns) such that every selected
//! pair is at distance `≥ D` (Hamming over the grouping attributes) and the
//! **sum** of scores is maximized. The paper evaluates a brute-force
//! implementation over the top-`L` elements and reports, per pick, the
//! average value of the elements within distance `D − 1` (the implicit
//! "cluster" around each representative).

use qagview_common::{QagError, Result};
use qagview_lattice::{AnswerSet, TupleId};

/// One selected representative element.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversifiedPick {
    /// The selected element.
    pub tuple: TupleId,
    /// Its own score.
    pub score: f64,
    /// Average score of top-`L` elements within distance `D − 1`
    /// (including itself) — the implicit cluster the pick represents.
    pub neighborhood_avg: f64,
}

/// Exact diversified top-`k` over the top-`l` elements via DFS with
/// distance pruning (the instance sizes of App. A.5 are tiny).
pub fn diversified_topk(
    answers: &AnswerSet,
    l: usize,
    k: usize,
    d: usize,
) -> Result<Vec<DiversifiedPick>> {
    if k == 0 || l == 0 || l > answers.len() {
        return Err(QagError::param(
            "diversified top-k requires k >= 1 and 1 <= L <= n",
        ));
    }
    if l > 30 {
        return Err(QagError::param(
            "exact diversified top-k is exponential; use L <= 30 (the paper used L = 10)",
        ));
    }
    let mut search = Search {
        answers,
        ids: (0..l as u32).collect(),
        d,
        chosen: Vec::new(),
        best: None,
    };
    search.dfs(0, k, 0.0);
    let (_, picks) = search
        .best
        .ok_or_else(|| QagError::internal("empty selection space"))?;
    Ok(picks
        .into_iter()
        .map(|t| {
            let (sum, cnt) = neighborhood(answers, l, t, d.saturating_sub(1));
            DiversifiedPick {
                tuple: t,
                score: answers.val(t),
                neighborhood_avg: sum / cnt as f64,
            }
        })
        .collect())
}

struct Search<'a> {
    answers: &'a AnswerSet,
    ids: Vec<TupleId>,
    d: usize,
    chosen: Vec<TupleId>,
    best: Option<(f64, Vec<TupleId>)>,
}

impl Search<'_> {
    fn dfs(&mut self, start: usize, remaining: usize, sum: f64) {
        if self.best.as_ref().is_none_or(|(bs, _)| sum > *bs) && !self.chosen.is_empty() {
            self.best = Some((sum, self.chosen.clone()));
        }
        if remaining == 0 {
            return;
        }
        for offset in 0..self.ids.len().saturating_sub(start) {
            let t = self.ids[start + offset];
            let ok = self
                .chosen
                .iter()
                .all(|&c| hamming(self.answers.tuple(c), self.answers.tuple(t)) >= self.d);
            if !ok {
                continue;
            }
            self.chosen.push(t);
            let val = self.answers.val(t);
            self.dfs(start + offset + 1, remaining - 1, sum + val);
            self.chosen.pop();
        }
    }
}

fn hamming(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

fn neighborhood(answers: &AnswerSet, l: usize, center: TupleId, radius: usize) -> (f64, usize) {
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for t in 0..l as u32 {
        if hamming(answers.tuple(center), answers.tuple(t)) <= radius {
            sum += answers.val(t);
            cnt += 1;
        }
    }
    (sum, cnt.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into(), "c".into()]);
        b.push(&["x", "p", "1"], 9.0).unwrap();
        b.push(&["x", "p", "2"], 8.5).unwrap(); // distance 1 from rank 1
        b.push(&["y", "q", "3"], 7.0).unwrap(); // distance 3 from rank 1
        b.push(&["z", "r", "4"], 6.0).unwrap();
        b.push(&["x", "q", "1"], 5.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn maximizes_sum_subject_to_distance() {
        let s = answers();
        // D=3: ranks 1 and 2 conflict; best pair is {rank1, rank3} = 16.
        let picks = diversified_topk(&s, 5, 2, 3).unwrap();
        let total: f64 = picks.iter().map(|p| p.score).sum();
        assert_eq!(picks.len(), 2);
        assert!((total - 16.0).abs() < 1e-12, "total {total}");
        for (i, a) in picks.iter().enumerate() {
            for b in &picks[i + 1..] {
                assert!(hamming(s.tuple(a.tuple), s.tuple(b.tuple)) >= 3);
            }
        }
    }

    #[test]
    fn d_zero_degenerates_to_top_k() {
        let s = answers();
        let picks = diversified_topk(&s, 5, 3, 0).unwrap();
        let ids: Vec<u32> = picks.iter().map(|p| p.tuple).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn neighborhood_average_includes_close_low_value_elements() {
        let s = answers();
        // Rank 1's neighborhood at radius 2 includes ranks 2 and 5 — so the
        // implicit cluster average is dragged below the pick's own score
        // (the paper's criticism of representative-based diversification).
        let picks = diversified_topk(&s, 5, 1, 3).unwrap();
        assert_eq!(picks[0].tuple, 0);
        assert!(picks[0].neighborhood_avg < picks[0].score);
    }

    #[test]
    fn infeasible_distance_yields_fewer_picks() {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 3.0).unwrap();
        b.push(&["x", "q"], 2.0).unwrap();
        let s = b.finish().unwrap();
        // Every pair is at distance 1 < 2: only singletons feasible.
        let picks = diversified_topk(&s, 2, 2, 2).unwrap();
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].tuple, 0);
    }

    #[test]
    fn parameter_validation() {
        let s = answers();
        assert!(diversified_topk(&s, 0, 1, 1).is_err());
        assert!(diversified_topk(&s, 99, 1, 1).is_err());
        assert!(diversified_topk(&s, 5, 0, 1).is_err());
    }
}
