//! λ-parameterized MMR-style diversification (paper App. A.5.4, \[41\]).
//!
//! Greedy Maximal-Marginal-Relevance selection over the top-`L` elements:
//! the first pick is the highest-scored element; each subsequent pick
//! maximizes `(1 − λ) · rel(e) + λ · div(e)` where `rel` is the min-max
//! normalized score and `div` is the normalized minimum distance to the
//! already-selected set. `λ = 0` degenerates to plain top-`k`; `λ = 1`
//! ignores relevance entirely — matching the App. A.5.4 table.

use qagview_common::{QagError, Result};
use qagview_lattice::{AnswerSet, TupleId};

fn hamming(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Select `k` elements from the top-`l` by greedy MMR with trade-off `λ`.
pub fn mmr_select(answers: &AnswerSet, l: usize, k: usize, lambda: f64) -> Result<Vec<TupleId>> {
    if k == 0 || l == 0 || l > answers.len() {
        return Err(QagError::param("MMR requires k >= 1 and 1 <= L <= n"));
    }
    if !(0.0..=1.0).contains(&lambda) {
        return Err(QagError::param(format!(
            "lambda={lambda} must be in [0, 1]"
        )));
    }
    let m = answers.arity() as f64;
    let vals: Vec<f64> = (0..l as u32).map(|t| answers.val(t)).collect();
    let (vmin, vmax) = vals
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (vmax - vmin).max(1e-12);
    let rel = |t: TupleId| (answers.val(t) - vmin) / span;

    let mut selected: Vec<TupleId> = vec![0]; // highest score first
    while selected.len() < k.min(l) {
        let mut best: Option<(f64, TupleId)> = None;
        for t in 0..l as u32 {
            if selected.contains(&t) {
                continue;
            }
            let min_dist = selected
                .iter()
                .map(|&s| hamming(answers.tuple(s), answers.tuple(t)))
                .min()
                .unwrap_or(0) as f64
                / m;
            let score = (1.0 - lambda) * rel(t) + lambda * min_dist;
            // Ties break toward the higher-ranked (smaller id) element, so
            // λ = 0 reproduces the plain top-k exactly.
            if best.is_none_or(|(bs, _)| score > bs) {
                best = Some((score, t));
            }
        }
        match best {
            Some((_, t)) => selected.push(t),
            None => break,
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        b.push(&["1975", "20s", "M", "Student"], 4.24).unwrap();
        b.push(&["1980", "20s", "M", "Programmer"], 4.13).unwrap();
        b.push(&["1980", "10s", "M", "Student"], 3.96).unwrap();
        b.push(&["1980", "20s", "M", "Student"], 3.91).unwrap();
        b.push(&["1985", "20s", "M", "Programmer"], 3.86).unwrap();
        b.push(&["1995", "30s", "F", "Educator"], 3.70).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn lambda_zero_is_plain_topk() {
        let s = answers();
        let sel = mmr_select(&s, 6, 4, 0.0).unwrap();
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    #[test]
    fn moderate_lambda_swaps_in_diverse_tail_elements() {
        // The App. A.5.4 behaviour: as λ grows the redundant low-rank pick
        // is replaced by the very different (1995, 30s, F, Educator). The
        // exact crossover λ depends on score normalization; with min-max
        // normalization it happens by λ = 0.5.
        let s = answers();
        for lambda in [0.5, 0.8] {
            let sel = mmr_select(&s, 6, 4, lambda).unwrap();
            assert!(
                sel.contains(&5),
                "λ={lambda}: expected the diverse educator pick, got {sel:?}"
            );
            assert_eq!(sel[0], 0, "first pick is always the top element");
        }
        // Low λ stays relevance-driven (the top-4 block).
        assert_eq!(mmr_select(&s, 6, 4, 0.2).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn lambda_one_ignores_relevance() {
        let s = answers();
        let sel = mmr_select(&s, 6, 3, 1.0).unwrap();
        // After the seed, picks maximize distance only; the educator (all
        // four attributes different) must appear immediately.
        assert_eq!(sel[1], 5);
    }

    #[test]
    fn k_capped_by_l() {
        let s = answers();
        let sel = mmr_select(&s, 3, 10, 0.5).unwrap();
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn parameter_validation() {
        let s = answers();
        assert!(mmr_select(&s, 6, 0, 0.5).is_err());
        assert!(mmr_select(&s, 0, 1, 0.5).is_err());
        assert!(mmr_select(&s, 6, 1, 1.5).is_err());
        assert!(mmr_select(&s, 6, 1, -0.1).is_err());
    }
}
