//! DisC diversity (paper App. A.5.3, adapting Drosou & Pitoura \[8\]).
//!
//! A *DisC diverse subset* `S'` of a set `P` at radius `r`: every element
//! of `P` is within distance `r` of some element of `S'` (coverage), and no
//! two elements of `S'` are within distance `r` of each other
//! (independence). Any maximal independent set of the `r`-neighborhood
//! graph qualifies; minimizing `|S'|` is NP-hard, so — like the original
//! paper — a greedy construction is used, scanning elements in descending
//! score order so high-value representatives are preferred.

use qagview_common::{QagError, Result};
use qagview_lattice::{AnswerSet, TupleId};

fn hamming(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Greedy DisC diverse subset of the top-`l` elements at radius `r`.
///
/// Returns the chosen representatives in pick order (descending score).
pub fn disc_diverse_subset(answers: &AnswerSet, l: usize, r: usize) -> Result<Vec<TupleId>> {
    if l == 0 || l > answers.len() {
        return Err(QagError::param(format!(
            "L={l} out of range 1..={}",
            answers.len()
        )));
    }
    let mut chosen: Vec<TupleId> = Vec::new();
    // Descending-score scan = ascending tuple id.
    for t in 0..l as u32 {
        let independent = chosen
            .iter()
            .all(|&c| hamming(answers.tuple(c), answers.tuple(t)) > r);
        if independent {
            chosen.push(t);
        }
    }
    Ok(chosen)
}

/// Verify the DisC property for a candidate subset (used by tests and the
/// App. A.5 comparison harness).
pub fn is_disc_diverse(answers: &AnswerSet, l: usize, r: usize, subset: &[TupleId]) -> bool {
    // Independence.
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            if hamming(answers.tuple(a), answers.tuple(b)) <= r {
                return false;
            }
        }
    }
    // Coverage.
    (0..l as u32).all(|t| {
        subset
            .iter()
            .any(|&c| hamming(answers.tuple(c), answers.tuple(t)) <= r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into(), "c".into()]);
        b.push(&["x", "p", "1"], 9.0).unwrap();
        b.push(&["x", "p", "2"], 8.0).unwrap();
        b.push(&["x", "q", "1"], 7.0).unwrap();
        b.push(&["y", "q", "3"], 6.0).unwrap();
        b.push(&["z", "r", "4"], 5.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn greedy_output_satisfies_disc_property() {
        let s = answers();
        for r in 0..=3 {
            let subset = disc_diverse_subset(&s, 5, r).unwrap();
            assert!(
                is_disc_diverse(&s, 5, r, &subset),
                "radius {r}: {subset:?} violates DisC"
            );
        }
    }

    #[test]
    fn radius_zero_selects_everything() {
        let s = answers();
        let subset = disc_diverse_subset(&s, 5, 0).unwrap();
        assert_eq!(subset.len(), 5);
    }

    #[test]
    fn larger_radius_selects_fewer() {
        let s = answers();
        let small = disc_diverse_subset(&s, 5, 1).unwrap();
        let large = disc_diverse_subset(&s, 5, 3).unwrap();
        assert!(large.len() <= small.len());
        assert!(!large.is_empty());
    }

    #[test]
    fn high_value_elements_preferred() {
        let s = answers();
        let subset = disc_diverse_subset(&s, 5, 2).unwrap();
        assert_eq!(subset[0], 0, "the top element is always independent first");
    }

    #[test]
    fn no_size_bound_is_the_papers_criticism() {
        // Unlike the qagview framework, nothing caps |S'|: with r = 0 the
        // answer is as large as L itself.
        let s = answers();
        let subset = disc_diverse_subset(&s, 4, 0).unwrap();
        assert_eq!(subset.len(), 4);
    }

    #[test]
    fn validates_l() {
        let s = answers();
        assert!(disc_diverse_subset(&s, 0, 1).is_err());
        assert!(disc_diverse_subset(&s, 6, 1).is_err());
    }

    #[test]
    fn verifier_detects_violations() {
        let s = answers();
        // Ranks 1 and 2 are at distance 1: not independent at r=1.
        assert!(!is_disc_diverse(&s, 5, 1, &[0, 1]));
        // Missing coverage: {rank 5} alone cannot cover rank 1 at r=1.
        assert!(!is_disc_diverse(&s, 5, 1, &[4]));
    }
}
