//! Comparator algorithms from the paper's related work (§2, App. A.5, §8).
//!
//! The paper argues that neighbouring formulations do not solve its
//! problem; App. A.5 backs this with qualitative tables produced by adapted
//! implementations of each, and §8's user study compares against decision
//! trees. This crate implements them all from scratch:
//!
//! * [`mod@smart_drilldown`] — Joglekar et al.'s smart drill-down operator \[24\]
//!   with the paper's value-adapted scoring
//!   `Σ MCount(r, R) · W(r) · val(r)`.
//! * [`mod@diversified_topk`] — Qin et al.'s diversified top-`k` \[31\]:
//!   max-score element subsets with pairwise distance `≥ D`.
//! * [`mod@disc`] — Drosou & Pitoura's DisC diversity \[8\]: a minimal
//!   independent covering subset at radius `r`.
//! * [`mod@mmr`] — the λ-parameterized MMR-style diversification evaluated in
//!   App. A.5.4 \[41\].
//! * [`mod@decision_tree`] — a CART-style classifier (gini, categorical
//!   equality splits, height tuned so positive leaves `≤ k`) matching the
//!   §8 scikit-learn adaptation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decision_tree;
pub mod disc;
pub mod diversified_topk;
pub mod mmr;
pub mod smart_drilldown;

pub use decision_tree::{fit_for_k, DecisionTree, Rule};
pub use disc::disc_diverse_subset;
pub use diversified_topk::{diversified_topk, DiversifiedPick};
pub use mmr::mmr_select;
pub use smart_drilldown::{smart_drilldown, DrillRule, RuleSource};
