//! Value-adapted smart drill-down (paper App. A.5.1, adapting \[24\]).
//!
//! Smart drill-down selects an *ordered* set of `k` rules (patterns with
//! `∗`) maximizing `Σ_r MCount(r, R) · W(r)`, where the marginal count
//! `MCount` ignores tuples covered by earlier rules and the weight `W` is
//! the number of non-`∗` attributes. To compare against a value-aware
//! summarizer, the paper multiplies in `val(r)` — the average value of the
//! rule's *uncovered* tuples — and runs the greedy algorithm (shown to work
//! well in \[24\]) over either all elements or the top-`L` only.

use qagview_common::{FixedBitSet, QagError, Result};
use qagview_lattice::{AnswerSet, Pattern};

/// Which elements seed the rule space and the coverage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSource {
    /// Rules generated from (and scored over) all elements of `S`.
    AllElements,
    /// Rules generated from the top-`L` elements only.
    TopL(usize),
}

/// One selected rule with its scoring components.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillRule {
    /// The rule pattern.
    pub pattern: Pattern,
    /// Marginal tuple count at selection time.
    pub marginal_count: usize,
    /// Non-`∗` attribute count.
    pub weight: usize,
    /// Average value of the marginal tuples.
    pub avg_val: f64,
}

impl DrillRule {
    /// The adapted score contribution `MCount · W · val`.
    pub fn score(&self) -> f64 {
        self.marginal_count as f64 * self.weight as f64 * self.avg_val
    }
}

/// Greedy value-adapted smart drill-down: pick `k` rules maximizing the
/// marginal adapted score.
///
/// # Errors
///
/// Rejects `k == 0`, an out-of-range `TopL`, or an attribute count too
/// large for eager rule generation.
pub fn smart_drilldown(
    answers: &AnswerSet,
    k: usize,
    source: RuleSource,
) -> Result<Vec<DrillRule>> {
    if k == 0 {
        return Err(QagError::param("smart drill-down requires k >= 1"));
    }
    let seed_count = match source {
        RuleSource::AllElements => answers.len(),
        RuleSource::TopL(l) => {
            if l == 0 || l > answers.len() {
                return Err(QagError::param(format!(
                    "TopL({l}) out of range 1..={}",
                    answers.len()
                )));
            }
            l
        }
    };
    if answers.arity() > 16 {
        return Err(QagError::param(
            "rule generation supports at most 16 attributes",
        ));
    }

    // Rule space: all generalizations of the seed elements, deduplicated.
    let mut rules: Vec<Pattern> = Vec::new();
    let mut seen: std::collections::HashSet<Pattern> = Default::default();
    for t in 0..seed_count as u32 {
        Pattern::for_each_generalization(answers.tuple(t), |slots| {
            let p = Pattern::new(slots.to_vec());
            if seen.insert(p.clone()) {
                rules.push(p);
            }
        });
    }

    // Precompute coverage over the scoring universe.
    let universe = seed_count as u32;
    let coverage: Vec<Vec<u32>> = rules
        .iter()
        .map(|r| {
            (0..universe)
                .filter(|&t| r.covers_tuple(answers.tuple(t)))
                .collect::<Vec<u32>>()
        })
        .collect();

    let mut covered = FixedBitSet::new(seed_count);
    let mut picked: Vec<DrillRule> = Vec::new();
    for _ in 0..k {
        let mut best: Option<(f64, usize, DrillRule)> = None;
        for (ri, rule) in rules.iter().enumerate() {
            let weight = rule.arity() - rule.level();
            if weight == 0 {
                continue; // the all-∗ rule carries no information
            }
            let mut mcount = 0usize;
            let mut sum = 0.0;
            for &t in &coverage[ri] {
                if !covered.contains(t as usize) {
                    mcount += 1;
                    sum += answers.val(t);
                }
            }
            if mcount == 0 {
                continue;
            }
            let avg_val = sum / mcount as f64;
            let candidate = DrillRule {
                pattern: rule.clone(),
                marginal_count: mcount,
                weight,
                avg_val,
            };
            let score = candidate.score();
            let better = match &best {
                None => true,
                Some((bs, bi, _)) => {
                    score > *bs
                        || (score == *bs
                            && rule.cmp_for_ties(&rules[*bi]) == std::cmp::Ordering::Less)
                }
            };
            if better {
                best = Some((score, ri, candidate));
            }
        }
        let Some((_, ri, rule)) = best else { break };
        for &t in &coverage[ri] {
            covered.insert(t as usize);
        }
        picked.push(rule);
    }
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    /// A relation where the most *frequent* pattern is NOT the most
    /// valuable one — the App. A.5.1 failure mode.
    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        // Valuable but narrow: (gold, ·) × 2 at the top.
        b.push(&["gold", "p"], 9.0).unwrap();
        b.push(&["gold", "q"], 8.0).unwrap();
        // Frequent but mixed-value: (common, ·) × 4 spanning the ranking.
        b.push(&["common", "p"], 5.0).unwrap();
        b.push(&["common", "q"], 4.0).unwrap();
        b.push(&["common", "r"], 1.0).unwrap();
        b.push(&["common", "s"], 0.5).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn greedy_returns_k_rules_with_positive_scores() {
        let s = answers();
        let rules = smart_drilldown(&s, 3, RuleSource::AllElements).unwrap();
        assert!(rules.len() <= 3 && !rules.is_empty());
        for r in &rules {
            assert!(r.score() > 0.0);
            assert!(r.weight >= 1);
        }
    }

    #[test]
    fn prefers_high_count_patterns_even_when_mixed_value() {
        // The adapted score still multiplies count; with enough commons the
        // frequent pattern wins the first pick — the paper's criticism.
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["gold", "p"], 9.0).unwrap();
        for (i, v) in [5.0, 4.5, 4.0, 3.5, 3.0, 2.5, 2.0, 1.5].iter().enumerate() {
            b.push(&["common", &format!("q{i}")], *v).unwrap();
        }
        let s = b.finish().unwrap();
        let rules = smart_drilldown(&s, 1, RuleSource::AllElements).unwrap();
        let first = s.pattern_to_string(&rules[0].pattern);
        assert!(
            first.contains("common"),
            "count-driven pick expected, got {first}"
        );
    }

    #[test]
    fn top_l_source_restricts_universe() {
        let s = answers();
        let rules = smart_drilldown(&s, 2, RuleSource::TopL(2)).unwrap();
        // Only gold tuples exist in the universe.
        for r in &rules {
            assert!(s.pattern_to_string(&r.pattern).contains("gold"));
        }
    }

    #[test]
    fn marginal_counts_do_not_double_count() {
        let s = answers();
        let rules = smart_drilldown(&s, 4, RuleSource::AllElements).unwrap();
        let total: usize = rules.iter().map(|r| r.marginal_count).sum();
        assert!(total <= s.len(), "marginals exceed universe: {total}");
    }

    #[test]
    fn parameter_validation() {
        let s = answers();
        assert!(smart_drilldown(&s, 0, RuleSource::AllElements).is_err());
        assert!(smart_drilldown(&s, 2, RuleSource::TopL(0)).is_err());
        assert!(smart_drilldown(&s, 2, RuleSource::TopL(99)).is_err());
    }
}
