//! Property tests for the layout optimizer: optimality, permutation
//! validity, and dominance over the default placement.

use proptest::prelude::*;
use qagview_viz::hungarian::{min_cost_assignment, min_cost_assignment_brute};
use qagview_viz::layout::{band_crossings, optimal_placement, total_distance, Placement};
use qagview_viz::overlap::Transition;

fn arb_transition() -> impl Strategy<Value = Transition> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(0usize..8, rows * cols).prop_map(move |cells| {
            let overlaps: Vec<Vec<usize>> =
                cells.chunks(cols).map(|chunk| chunk.to_vec()).collect();
            let left_sizes: Vec<usize> = overlaps
                .iter()
                .map(|row| row.iter().sum::<usize>().max(1))
                .collect();
            let right_sizes: Vec<usize> = (0..cols)
                .map(|j| overlaps.iter().map(|row| row[j]).sum::<usize>().max(1))
                .collect();
            Transition {
                left_labels: (0..rows).map(|i| format!("L{i}")).collect(),
                right_labels: (0..cols).map(|j| format!("R{j}")).collect(),
                left_top: left_sizes.iter().map(|s| s / 2).collect(),
                right_top: right_sizes.iter().map(|s| s / 2).collect(),
                left_sizes,
                right_sizes,
                overlaps,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimal placement is a permutation achieving its reported cost,
    /// and no worse than the default ordering.
    #[test]
    fn optimal_dominates_default(t in arb_transition()) {
        let (placement, cost) = optimal_placement(&t);
        // Permutation validity.
        let mut seen = vec![false; t.right_len()];
        for &p in &placement.position {
            prop_assert!(p < t.right_len());
            prop_assert!(!seen[p], "duplicate slot");
            seen[p] = true;
        }
        // Reported cost is the actual Def. A.3 objective.
        prop_assert!((total_distance(&t, &placement) - cost).abs() < 1e-9);
        // Dominance.
        let default = Placement::default_order(t.right_len());
        prop_assert!(cost <= total_distance(&t, &default) + 1e-9);
    }

    /// No single transposition of the optimal placement improves it
    /// (local optimality — implied by global optimality).
    #[test]
    fn optimal_is_swap_stable(t in arb_transition()) {
        let (placement, cost) = optimal_placement(&t);
        let n = t.right_len();
        for i in 0..n {
            for j in i + 1..n {
                let mut swapped = placement.clone();
                swapped.position.swap(i, j);
                prop_assert!(
                    total_distance(&t, &swapped) + 1e-9 >= cost,
                    "swap ({i},{j}) improved the optimum"
                );
            }
        }
    }

    /// Hungarian equals brute force on random square matrices.
    #[test]
    fn hungarian_equals_brute(
        n in 1usize..=5,
        cells in prop::collection::vec(0.0f64..100.0, 25),
    ) {
        let cost: Vec<Vec<f64>> =
            (0..n).map(|i| (0..n).map(|j| cells[i * 5 + j]).collect()).collect();
        let (_, fast) = min_cost_assignment(&cost);
        let (_, slow) = min_cost_assignment_brute(&cost);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    /// Crossing counts are invariant under relabeling both sides with the
    /// identity and zero for the empty band set.
    #[test]
    fn crossings_sanity(t in arb_transition()) {
        let default = Placement::default_order(t.right_len());
        let crossings = band_crossings(&t, &default);
        // An upper bound: every band pair crosses at most once.
        let bands = t.bands().len();
        prop_assert!(crossings <= bands * bands.saturating_sub(1) / 2);
    }
}
