//! Cluster placement: the Def. A.3 optimization and the Fig. 16 metrics.
//!
//! The left column keeps its order (`p_a` fixed); the optimizer permutes
//! the right column to minimize the weighted earth-mover objective
//! `D = Σ_ij m_ij · |p_ai − p_bj|`. Reduction (App. A.7.2): assigning right
//! cluster `u` to position `v` costs `Σ_i m_iu · |i − v|`, independent of
//! the rest of the permutation — a minimum-cost perfect matching.

use crate::hungarian::min_cost_assignment;
use crate::overlap::Transition;

/// A placement of the right-hand clusters: `position[j]` is the vertical
/// slot of right cluster `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Slot per right cluster.
    pub position: Vec<usize>,
}

impl Placement {
    /// The default placement: right clusters keep their display (value)
    /// order — what the GUI shows without optimization.
    pub fn default_order(n: usize) -> Self {
        Placement {
            position: (0..n).collect(),
        }
    }
}

/// The Def. A.3 objective for a given placement.
pub fn total_distance(t: &Transition, placement: &Placement) -> f64 {
    let mut d = 0.0;
    for (i, j, m) in t.bands() {
        let pa = i as f64;
        let pb = placement.position[j] as f64;
        d += m as f64 * (pa - pb).abs();
    }
    d
}

/// Number of crossing band pairs under a placement (the Fig. 16(b) metric):
/// bands `(i → j)` and `(i' → j')` cross iff their endpoints are oppositely
/// ordered on the two sides.
pub fn band_crossings(t: &Transition, placement: &Placement) -> usize {
    let bands = t.bands();
    let mut crossings = 0;
    for (x, &(i1, j1, _)) in bands.iter().enumerate() {
        for &(i2, j2, _) in &bands[x + 1..] {
            let left = i1 as isize - i2 as isize;
            let right = placement.position[j1] as isize - placement.position[j2] as isize;
            if left * right < 0 {
                crossings += 1;
            }
        }
    }
    crossings
}

/// Solve Def. A.3 exactly via the Hungarian reduction. Returns the optimal
/// placement and its objective value.
pub fn optimal_placement(t: &Transition) -> (Placement, f64) {
    let n = t.right_len();
    if n == 0 {
        return (Placement { position: vec![] }, 0.0);
    }
    // cost[u][v] = Σ_i m_iu · |i − v|.
    let cost: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            (0..n)
                .map(|v| {
                    (0..t.left_len())
                        .map(|i| t.overlaps[i][u] as f64 * (i as f64 - v as f64).abs())
                        .sum()
                })
                .collect()
        })
        .collect();
    let (assignment, total) = min_cost_assignment(&cost);
    (
        Placement {
            position: assignment,
        },
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built transition: left cluster i overlaps right cluster
    /// (n-1-i) — the reversal case where the default order is maximally
    /// tangled and the optimum untangles everything.
    fn reversed(n: usize) -> Transition {
        let overlaps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).map(|j| usize::from(i + j == n - 1) * 5).collect())
            .collect();
        Transition {
            left_labels: (0..n).map(|i| format!("L{i}")).collect(),
            right_labels: (0..n).map(|i| format!("R{i}")).collect(),
            left_sizes: vec![5; n],
            right_sizes: vec![5; n],
            left_top: vec![2; n],
            right_top: vec![2; n],
            overlaps,
        }
    }

    #[test]
    fn default_order_of_reversal_is_bad() {
        let t = reversed(4);
        let default = Placement::default_order(4);
        assert_eq!(total_distance(&t, &default), 5.0 * (3.0 + 1.0 + 1.0 + 3.0));
        assert_eq!(band_crossings(&t, &default), 6); // C(4,2) crossings
    }

    #[test]
    fn optimal_untangles_reversal() {
        let t = reversed(4);
        let (placement, cost) = optimal_placement(&t);
        assert_eq!(cost, 0.0);
        assert_eq!(placement.position, vec![3, 2, 1, 0]);
        assert_eq!(band_crossings(&t, &placement), 0);
    }

    #[test]
    fn optimal_never_worse_than_default() {
        // A lopsided matrix with shared mass.
        let t = Transition {
            left_labels: vec!["a".into(), "b".into(), "c".into()],
            right_labels: vec!["r0".into(), "r1".into(), "r2".into()],
            left_sizes: vec![10, 6, 4],
            right_sizes: vec![8, 8, 4],
            left_top: vec![3, 2, 1],
            right_top: vec![4, 1, 1],
            overlaps: vec![vec![2, 6, 1], vec![5, 0, 1], vec![0, 2, 2]],
        };
        let default = Placement::default_order(3);
        let (opt, opt_cost) = optimal_placement(&t);
        assert!(opt_cost <= total_distance(&t, &default) + 1e-9);
        assert!((total_distance(&t, &opt) - opt_cost).abs() < 1e-9);
    }

    #[test]
    fn empty_transition() {
        let t = Transition {
            left_labels: vec![],
            right_labels: vec![],
            left_sizes: vec![],
            right_sizes: vec![],
            left_top: vec![],
            right_top: vec![],
            overlaps: vec![],
        };
        let (p, c) = optimal_placement(&t);
        assert!(p.position.is_empty());
        assert_eq!(c, 0.0);
        assert_eq!(band_crossings(&t, &p), 0);
    }

    #[test]
    fn identity_transition_prefers_identity() {
        let n = 3;
        let overlaps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).map(|j| usize::from(i == j) * 7).collect())
            .collect();
        let t = Transition {
            left_labels: vec!["x".into(); n],
            right_labels: vec!["y".into(); n],
            left_sizes: vec![7; n],
            right_sizes: vec![7; n],
            left_top: vec![0; n],
            right_top: vec![0; n],
            overlaps,
        };
        let (p, c) = optimal_placement(&t);
        assert_eq!(p.position, vec![0, 1, 2]);
        assert_eq!(c, 0.0);
    }
}
