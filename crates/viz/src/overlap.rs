//! The shared-tuple overlap matrix between two successive solutions.

use qagview_core::Solution;
use qagview_lattice::AnswerSet;

/// A transition from an old solution (`left`) to a new one (`right`):
/// cluster sizes, top-`L` content, and the pairwise overlap counts `m_ij`
/// that weight the comparison bands (App. A.7.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Rendered pattern of each left cluster, in display order.
    pub left_labels: Vec<String>,
    /// Rendered pattern of each right cluster.
    pub right_labels: Vec<String>,
    /// Tuple count per left cluster (box width in the GUI).
    pub left_sizes: Vec<usize>,
    /// Tuple count per right cluster.
    pub right_sizes: Vec<usize>,
    /// Count of top-`L` tuples per left cluster (dark box fraction).
    pub left_top: Vec<usize>,
    /// Count of top-`L` tuples per right cluster.
    pub right_top: Vec<usize>,
    /// `overlaps[i][j]` = number of tuples shared by left `i` and right `j`.
    pub overlaps: Vec<Vec<usize>>,
}

impl Transition {
    /// Build the overlap matrix between two solutions over the same answer
    /// relation. `l` is the coverage parameter (for the top-`L` fractions).
    pub fn between(answers: &AnswerSet, left: &Solution, right: &Solution, l: usize) -> Self {
        let left_labels = left
            .clusters
            .iter()
            .map(|c| answers.pattern_to_string(&c.pattern))
            .collect();
        let right_labels = right
            .clusters
            .iter()
            .map(|c| answers.pattern_to_string(&c.pattern))
            .collect();
        let left_sizes = left.clusters.iter().map(|c| c.members.len()).collect();
        let right_sizes = right.clusters.iter().map(|c| c.members.len()).collect();
        let count_top = |members: &[u32]| members.iter().filter(|&&t| (t as usize) < l).count();
        let left_top = left
            .clusters
            .iter()
            .map(|c| count_top(&c.members))
            .collect();
        let right_top = right
            .clusters
            .iter()
            .map(|c| count_top(&c.members))
            .collect();
        let overlaps = left
            .clusters
            .iter()
            .map(|a| {
                right
                    .clusters
                    .iter()
                    .map(|b| sorted_intersection_len(&a.members, &b.members))
                    .collect()
            })
            .collect();
        Transition {
            left_labels,
            right_labels,
            left_sizes,
            right_sizes,
            left_top,
            right_top,
            overlaps,
        }
    }

    /// Number of left clusters.
    pub fn left_len(&self) -> usize {
        self.left_sizes.len()
    }

    /// Number of right clusters.
    pub fn right_len(&self) -> usize {
        self.right_sizes.len()
    }

    /// The bands: `(left, right, shared)` triples with `shared > 0`.
    pub fn bands(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for (i, row) in self.overlaps.iter().enumerate() {
            for (j, &m) in row.iter().enumerate() {
                if m > 0 {
                    out.push((i, j, m));
                }
            }
        }
        out
    }
}

/// Length of the intersection of two ascending-sorted id lists.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_core::Summarizer;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["x", "q"], 8.0).unwrap();
        b.push(&["y", "p"], 7.0).unwrap();
        b.push(&["y", "q"], 6.0).unwrap();
        b.push(&["z", "p"], 1.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn intersection_helper() {
        assert_eq!(sorted_intersection_len(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(sorted_intersection_len(&[], &[1]), 0);
        assert_eq!(sorted_intersection_len(&[7], &[7]), 1);
    }

    #[test]
    fn transition_between_k4_and_k2() {
        let s = answers();
        let sm = Summarizer::new(&s, 4).unwrap();
        let left = sm.bottom_up(4, 0).unwrap();
        let right = sm.bottom_up(2, 0).unwrap();
        let t = Transition::between(&s, &left, &right, 4);
        assert_eq!(t.left_len(), left.len());
        assert_eq!(t.right_len(), right.len());
        // Every left cluster's tuples must be accounted for in some band
        // when the right side covers at least as much.
        let band_total: usize = t.bands().iter().map(|&(_, _, m)| m).sum();
        assert!(
            band_total >= 4,
            "top-4 tuples flow through bands, got {band_total}"
        );
        // Overlap symmetry sanity: overlap <= min(size_left, size_right).
        for (i, j, m) in t.bands() {
            assert!(m <= t.left_sizes[i].min(t.right_sizes[j]));
        }
    }

    #[test]
    fn top_l_fractions_counted() {
        let s = answers();
        let sm = Summarizer::new(&s, 2).unwrap();
        let sol = sm.bottom_up(1, 0).unwrap();
        let t = Transition::between(&s, &sol, &sol, 2);
        // Identity transition: full overlap on the diagonal.
        for i in 0..t.left_len() {
            assert_eq!(t.overlaps[i][i], t.left_sizes[i]);
            assert!(t.left_top[i] <= t.left_sizes[i]);
        }
    }
}
