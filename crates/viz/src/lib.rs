//! Successive-solution comparison visualization (paper App. A.7, Figs.
//! 13–16).
//!
//! When the analyst nudges `k`, `L`, or `D`, the system shows how the old
//! clusters redistribute into the new ones with a two-column band diagram
//! (a vertical Sankey). A careless vertical ordering of the new clusters
//! tangles the bands (Fig. 15); the paper formulates placement as an
//! optimization problem (Def. A.3) — minimize the overlap-weighted earth-
//! mover distance `Σ m_ij · |p_ai − p_bj|` — and solves it exactly as a
//! minimum-cost perfect matching on a complete bipartite graph (clusters ×
//! positions).
//!
//! * [`overlap`] — the shared-tuple matrix between two solutions.
//! * [`hungarian`] — an `O(n³)` minimum-cost assignment solver.
//! * [`layout`] — default vs. optimal placements, total-distance and
//!   band-crossing metrics (the Fig. 16 measurements).
//! * [`sankey`] — ASCII rendering of a transition.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hungarian;
pub mod layout;
pub mod overlap;
pub mod sankey;

pub use hungarian::min_cost_assignment;
pub use layout::{band_crossings, optimal_placement, total_distance, Placement};
pub use overlap::Transition;
pub use sankey::render_transition;
