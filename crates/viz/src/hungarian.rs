//! Minimum-cost perfect matching on a complete bipartite graph.
//!
//! The classic `O(n³)` Hungarian algorithm with row/column potentials
//! (Kuhn–Munkres). The paper (App. A.7.2) reduces optimal cluster placement
//! to exactly this problem and cites its polynomial solvability \[14\]; here
//! the measured gap vs. brute force is reproduced in the Fig. 16 benches
//! (the paper reports <10 ms vs >2 s at k=10).

/// Solve the assignment problem for a square cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col`
/// minimizes the sum of `cost[row][col]` over a perfect matching.
///
/// # Panics
///
/// Panics if `cost` is not square or is empty, or contains NaN.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "empty cost matrix");
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
        assert!(row.iter().all(|c| !c.is_nan()), "cost matrix contains NaN");
    }

    // Potentials over rows (u) and columns (v); way[j] = predecessor column
    // on the alternating path; matched[j] = row matched to column j.
    // 1-based internals per the standard formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut matched = vec![0usize; n + 1]; // column -> row (0 = free)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        matched[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = matched[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[matched[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            matched[j0] = matched[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if matched[j] > 0 {
            assignment[matched[j] - 1] = j - 1;
            total += cost[matched[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

/// Brute-force reference (n! permutations); for tests and the Fig. 16
/// baseline comparison.
pub fn min_cost_assignment_brute(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0 && n <= 10, "brute force limited to n <= 10");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<(Vec<usize>, f64)> = None;
    permute(&mut perm, 0, &mut |p| {
        let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
            best = Some((p.to_vec(), c));
        }
    });
    best.expect("n > 0")
}

fn permute(perm: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    if i == perm.len() {
        f(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute(perm, i + 1, f);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_one_by_one() {
        let (a, c) = min_cost_assignment(&[vec![7.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_dominant() {
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        let (a, c) = min_cost_assignment(&cost);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn forced_permutation() {
        // Row 0 must take col 1, row 1 must take col 0.
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let (a, c) = min_cost_assignment(&cost);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(c, 2.0);
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 2.0], vec![3.0, -4.0]];
        let (a, c) = min_cost_assignment(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(c, -9.0);
    }

    #[test]
    fn classic_textbook_example() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (_, c) = min_cost_assignment(&cost);
        assert_eq!(c, 5.0); // 1 + 2 + 2
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        let _ = min_cost_assignment(&[vec![1.0, 2.0], vec![3.0]]);
    }

    proptest! {
        /// Hungarian matches the brute-force optimum on random matrices.
        #[test]
        fn matches_brute_force(
            n in 1usize..6,
            seed in prop::collection::vec(0u32..1000, 36),
        ) {
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..n).map(|j| f64::from(seed[i * 6 + j])).collect())
                .collect();
            let (fast_a, fast_c) = min_cost_assignment(&cost);
            let (_, slow_c) = min_cost_assignment_brute(&cost);
            prop_assert!((fast_c - slow_c).abs() < 1e-9, "fast {fast_c} vs brute {slow_c}");
            // The returned assignment must be a permutation achieving the cost.
            let mut seen = vec![false; n];
            let mut total = 0.0;
            for (i, &j) in fast_a.iter().enumerate() {
                prop_assert!(!seen[j]);
                seen[j] = true;
                total += cost[i][j];
            }
            prop_assert!((total - fast_c).abs() < 1e-9);
        }
    }
}
