//! ASCII rendering of a solution transition (the Fig. 13/14 view, in text).

use crate::layout::Placement;
use crate::overlap::Transition;
use std::fmt::Write as _;

/// Render a transition as a two-column band list. Right clusters are shown
/// in `placement` order; each band line shows the shared tuple count, and
/// box "widths" are proportional tuple counts with the top-`L` fraction in
/// `#` and the redundant remainder in `-`.
pub fn render_transition(t: &Transition, placement: &Placement) -> String {
    let mut out = String::new();
    let bar = |total: usize, top: usize| -> String {
        const SCALE: usize = 24;
        let max = 1usize.max(total);
        let width = (total * SCALE).div_ceil(max.max(SCALE));
        let top_w = if total == 0 {
            0
        } else {
            (top * width).div_ceil(total)
        };
        format!(
            "{}{}",
            "#".repeat(top_w),
            "-".repeat(width.saturating_sub(top_w))
        )
    };
    let _ = writeln!(out, "old solution:");
    for (i, label) in t.left_labels.iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{i}] {label}  |{}| {} tuples",
            bar(t.left_sizes[i], t.left_top[i]),
            t.left_sizes[i]
        );
    }
    let _ = writeln!(out, "new solution (optimized placement):");
    // Invert placement: slot -> right cluster.
    let mut slots: Vec<Option<usize>> = vec![None; t.right_len()];
    for (j, &slot) in placement.position.iter().enumerate() {
        slots[slot] = Some(j);
    }
    for (slot, j) in slots.iter().enumerate() {
        let j = j.expect("placement is a permutation");
        let _ = writeln!(
            out,
            "  [{slot}] {}  |{}| {} tuples",
            t.right_labels[j],
            bar(t.right_sizes[j], t.right_top[j]),
            t.right_sizes[j]
        );
    }
    let _ = writeln!(out, "bands (shared tuples):");
    for (i, j, m) in t.bands() {
        let _ = writeln!(out, "  old[{i}] ==({m})==> new[{}]", placement.position[j]);
    }
    out
}

impl Transition {
    /// Render this transition with the band-distance-optimal placement
    /// (Def. A.3) already solved — the one-call path for session consumers
    /// showing consecutive summaries.
    pub fn render_optimal(&self) -> String {
        let (placement, _) = crate::layout::optimal_placement(self);
        render_transition(self, &placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition() -> Transition {
        Transition {
            left_labels: vec!["(x, *)".into(), "(y, *)".into()],
            right_labels: vec!["(*, *)".into()],
            left_sizes: vec![4, 3],
            right_sizes: vec![8],
            left_top: vec![2, 1],
            right_top: vec![3],
            overlaps: vec![vec![4], vec![3]],
        }
    }

    #[test]
    fn render_mentions_all_clusters_and_bands() {
        let t = transition();
        let text = render_transition(&t, &Placement::default_order(1));
        assert!(text.contains("(x, *)"));
        assert!(text.contains("(y, *)"));
        assert!(text.contains("(*, *)"));
        assert!(text.contains("==(4)==>"));
        assert!(text.contains("==(3)==>"));
    }

    #[test]
    fn render_optimal_solves_placement_itself() {
        let t = transition();
        let direct = t.render_optimal();
        let (placement, _) = crate::layout::optimal_placement(&t);
        assert_eq!(direct, render_transition(&t, &placement));
    }

    #[test]
    fn bars_reflect_top_fraction() {
        let t = transition();
        let text = render_transition(&t, &Placement::default_order(1));
        assert!(text.contains('#'), "top-L fraction bar");
        assert!(text.contains('-'), "redundant fraction bar");
    }
}
