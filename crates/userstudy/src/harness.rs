//! The full study protocol: task groups, sections, assignment, aggregation.

use crate::category::{categorize, Category};
use crate::subject::{SubjectModel, SubjectParams};
use crate::summary::Summary;
use qagview_baselines::decision_tree::fit_for_k;
use qagview_common::rng::{child_seed, seeded};
use qagview_common::{QagError, Result};
use qagview_core::Summarizer;
use qagview_lattice::{AnswerSet, TupleId};
use rand::seq::SliceRandom;
use std::fmt::Write as _;

/// Default master-seed set for [`run_study_averaged`]: five independent
/// streams, so headline conclusions never hinge on one simulated cohort.
pub const DEFAULT_STUDY_SEEDS: [u64; 5] = [1807, 2018, 42, 7, 97];

/// Study configuration; defaults mirror §8.1/§8.2.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Number of simulated subjects (paper: 16).
    pub subjects: usize,
    /// Master seed.
    pub seed: u64,
    /// Subject behavioural parameters.
    pub params: SubjectParams,
    /// Varying-method group `(L, k, D)` (paper: 50, 10, 1).
    pub method_group: (usize, usize, usize),
    /// Varying-k group `(L, D, k_a, k_b)` (paper: 30, 1, 5, 10).
    pub k_group: (usize, usize, usize, usize),
    /// Varying-D group `(L, k, D_a, D_b)` (paper: 10, 7, 1, 3).
    pub d_group: (usize, usize, usize, usize),
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            subjects: 16,
            seed: 1807,
            params: SubjectParams::default(),
            method_group: (50, 10, 1),
            k_group: (30, 1, 5, 10),
            d_group: (10, 7, 1, 3),
        }
    }
}

/// Aggregated per-section statistics (mean ± sd across subjects).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SectionStats {
    /// Mean seconds per question.
    pub time_mean: f64,
    /// Std. deviation of per-subject mean times.
    pub time_sd: f64,
    /// Mean T-accuracy.
    pub t_acc_mean: f64,
    /// Std. deviation of T-accuracy.
    pub t_acc_sd: f64,
    /// Mean TH-accuracy.
    pub th_acc_mean: f64,
    /// Std. deviation of TH-accuracy.
    pub th_acc_sd: f64,
    /// Number of contributing subjects.
    pub n: usize,
}

/// One arm (working set) of a task group.
#[derive(Debug, Clone)]
pub struct ArmReport {
    /// Arm display name.
    pub name: String,
    /// Patterns-only, memory-only, patterns+members.
    pub sections: [SectionStats; 3],
    /// Fraction of all subjects preferring this arm.
    pub preferred: f64,
}

/// One task group (two arms).
#[derive(Debug, Clone)]
pub struct TaskGroupReport {
    /// Group display name.
    pub group: String,
    /// The two compared arms.
    pub arms: [ArmReport; 2],
}

/// The study outcome: Table 1 (all subjects) and Table 2 (the method-first
/// sequence half).
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// All 16 subjects (Table 1).
    pub table1: Vec<TaskGroupReport>,
    /// The method-first half (Table 2 / App. A.10).
    pub table2: Vec<TaskGroupReport>,
}

const SECTION_NAMES: [&str; 3] = ["Patterns-only", "Memory-only", "Patterns+members"];

impl StudyReport {
    /// Render one table in the paper's layout.
    pub fn render_table(groups: &[TaskGroupReport]) -> String {
        let mut out = String::new();
        for g in groups {
            let _ = writeln!(out, "== Task group: {} ==", g.group);
            let _ = writeln!(
                out,
                "{:<22} {:>24} {:>24}",
                "", g.arms[0].name, g.arms[1].name
            );
            for (si, name) in SECTION_NAMES.iter().enumerate() {
                let a = &g.arms[0].sections[si];
                let b = &g.arms[1].sections[si];
                let _ = writeln!(
                    out,
                    "{name:<22} time/q {:>6.1}±{:<4.1}  vs {:>6.1}±{:<4.1}",
                    a.time_mean, a.time_sd, b.time_mean, b.time_sd
                );
                let _ = writeln!(
                    out,
                    "{:<22} T-acc  {:>6.3}±{:<4.3} vs {:>6.3}±{:<4.3}",
                    "", a.t_acc_mean, a.t_acc_sd, b.t_acc_mean, b.t_acc_sd
                );
                let _ = writeln!(
                    out,
                    "{:<22} TH-acc {:>6.3}±{:<4.3} vs {:>6.3}±{:<4.3}",
                    "", a.th_acc_mean, a.th_acc_sd, b.th_acc_mean, b.th_acc_sd
                );
            }
            let _ = writeln!(
                out,
                "{:<22} preferred {:>5.1}% vs {:>5.1}%",
                "Overall",
                g.arms[0].preferred * 100.0,
                g.arms[1].preferred * 100.0
            );
        }
        out
    }

    /// Render both tables.
    pub fn render(&self) -> String {
        format!(
            "--- Table 1 (all subjects) ---\n{}\n--- Table 2 (method-first half) ---\n{}",
            Self::render_table(&self.table1),
            Self::render_table(&self.table2)
        )
    }
}

/// Per-subject raw record for one task group.
#[derive(Debug, Clone)]
struct SubjectRecord {
    arm: usize,
    method_first: bool,
    /// Per section: (mean time, t-accuracy, th-accuracy).
    sections: [(f64, f64, f64); 3],
    vote: usize,
}

struct TaskGroup {
    name: String,
    l: usize,
    arms: [Summary; 2],
    /// 12 distinct question tuples, 4 per category.
    question_pool: Vec<TupleId>,
    /// Child-seed tag regenerating the pool for another master seed.
    pool_tag: &'static str,
}

fn question_pool(answers: &AnswerSet, l: usize, seed: u64) -> Result<Vec<TupleId>> {
    let mut by_cat: [Vec<TupleId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for t in 0..answers.len() as u32 {
        let idx = match categorize(answers, l, t) {
            Category::Top => 0,
            Category::High => 1,
            Category::Low => 2,
        };
        by_cat[idx].push(t);
    }
    let mut rng = seeded(seed);
    let mut pool = Vec::with_capacity(12);
    for (ci, cat) in by_cat.iter_mut().enumerate() {
        if cat.len() < 4 {
            return Err(QagError::param(format!(
                "category {ci} has only {} tuples; the study needs 4 per category",
                cat.len()
            )));
        }
        cat.shuffle(&mut rng);
        pool.extend_from_slice(&cat[..4]);
    }
    Ok(pool)
}

/// Build the three task groups: summaries (seed-independent) plus the
/// question pools for `master_seed`.
fn build_groups(
    answers: &AnswerSet,
    cfg: &StudyConfig,
    master_seed: u64,
) -> Result<Vec<TaskGroup>> {
    let mut groups = Vec::with_capacity(3);

    // Varying-method.
    let (l, k, d) = cfg.method_group;
    let summarizer = Summarizer::new(answers, l)?;
    let ours = summarizer.hybrid(k, d)?;
    let tree = fit_for_k(answers, l, k)?;
    groups.push(TaskGroup {
        name: "varying-method".into(),
        l,
        arms: [
            Summary::from_rules("decision tree", answers, l, &tree.rules()),
            Summary::from_solution("our method", answers, l, &ours),
        ],
        question_pool: question_pool(answers, l, child_seed(master_seed, "q-method"))?,
        pool_tag: "q-method",
    });

    // Varying-k.
    let (l, d, k_a, k_b) = cfg.k_group;
    let summarizer = Summarizer::new(answers, l)?;
    groups.push(TaskGroup {
        name: "varying-k".into(),
        l,
        arms: [
            Summary::from_solution(
                &format!("k = {k_a}"),
                answers,
                l,
                &summarizer.hybrid(k_a, d)?,
            ),
            Summary::from_solution(
                &format!("k = {k_b}"),
                answers,
                l,
                &summarizer.hybrid(k_b, d)?,
            ),
        ],
        question_pool: question_pool(answers, l, child_seed(master_seed, "q-k"))?,
        pool_tag: "q-k",
    });

    // Varying-D.
    let (l, k, d_a, d_b) = cfg.d_group;
    let summarizer = Summarizer::new(answers, l)?;
    groups.push(TaskGroup {
        name: "varying-D".into(),
        l,
        arms: [
            Summary::from_solution(
                &format!("D = {d_a}"),
                answers,
                l,
                &summarizer.hybrid(k, d_a)?,
            ),
            Summary::from_solution(
                &format!("D = {d_b}"),
                answers,
                l,
                &summarizer.hybrid(k, d_b)?,
            ),
        ],
        question_pool: question_pool(answers, l, child_seed(master_seed, "q-d"))?,
        pool_tag: "q-d",
    });

    Ok(groups)
}

/// Re-draw every group's question pool for another master seed, keeping
/// the (expensive, seed-independent) summaries.
fn refresh_pools(answers: &AnswerSet, groups: &mut [TaskGroup], master_seed: u64) -> Result<()> {
    for g in groups {
        g.question_pool = question_pool(answers, g.l, child_seed(master_seed, g.pool_tag))?;
    }
    Ok(())
}

fn accuracy(records: &[(Category, Category)], positive: fn(Category) -> bool) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let correct = records
        .iter()
        .filter(|(pred, truth)| positive(*pred) == positive(*truth))
        .count();
    correct as f64 / records.len() as f64
}

fn run_subject_on_group(
    answers: &AnswerSet,
    group: &TaskGroup,
    arm: usize,
    subject: &mut SubjectModel,
    order_rng: &mut rand::rngs::StdRng,
    time_multiplier: f64,
) -> [(f64, f64, f64); 3] {
    let pool = &group.question_pool;
    // Sections 1 & 2: 6 distinct tuples each (2 per category); section 3:
    // 8 of the 12 (4 top, 2 high, 2 low), reshuffled.
    let s1: Vec<TupleId> = vec![pool[0], pool[1], pool[4], pool[5], pool[8], pool[9]];
    let s2: Vec<TupleId> = vec![pool[2], pool[3], pool[6], pool[7], pool[10], pool[11]];
    let mut s3: Vec<TupleId> = vec![
        pool[0], pool[1], pool[2], pool[3], pool[4], pool[6], pool[8], pool[10],
    ];
    s3.shuffle(order_rng);

    let summary = &group.arms[arm];
    let mut out = [(0.0, 0.0, 0.0); 3];

    // Patterns-only.
    let mut times = Vec::new();
    let mut preds = Vec::new();
    for &t in &s1 {
        let (p, time) = subject.answer_patterns_only(answers, summary, t);
        times.push(time * time_multiplier);
        preds.push((p, categorize(answers, group.l, t)));
    }
    out[0] = section_stats(&times, &preds);

    // Memory-only.
    let recalled = subject.recalled_items(summary);
    let mut times = Vec::new();
    let mut preds = Vec::new();
    for &t in &s2 {
        let (p, time) = subject.answer_memory_only(answers, &recalled, t);
        times.push(time * time_multiplier);
        preds.push((p, categorize(answers, group.l, t)));
    }
    out[1] = section_stats(&times, &preds);

    // Patterns+members.
    let mut times = Vec::new();
    let mut preds = Vec::new();
    for &t in &s3 {
        let (p, time) = subject.answer_with_members(answers, group.l, summary, t);
        times.push(time * time_multiplier);
        preds.push((p, categorize(answers, group.l, t)));
    }
    out[2] = section_stats(&times, &preds);

    out
}

fn section_stats(times: &[f64], preds: &[(Category, Category)]) -> (f64, f64, f64) {
    let time = times.iter().sum::<f64>() / times.len().max(1) as f64;
    let t_acc = accuracy(preds, |c| c == Category::Top);
    let th_acc = accuracy(preds, |c| c != Category::Low);
    (time, t_acc, th_acc)
}

fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

fn aggregate(
    groups: &[TaskGroup],
    records: &[Vec<SubjectRecord>],
    method_first_only: bool,
) -> Vec<TaskGroupReport> {
    groups
        .iter()
        .enumerate()
        .map(|(gi, group)| {
            let group_records: Vec<&SubjectRecord> = records[gi]
                .iter()
                .filter(|r| !method_first_only || r.method_first)
                .collect();
            let arms: Vec<ArmReport> = (0..2)
                .map(|arm| {
                    let own: Vec<&&SubjectRecord> =
                        group_records.iter().filter(|r| r.arm == arm).collect();
                    let mut sections = [SectionStats::default(); 3];
                    for (si, slot) in sections.iter_mut().enumerate() {
                        let times: Vec<f64> = own.iter().map(|r| r.sections[si].0).collect();
                        let t_accs: Vec<f64> = own.iter().map(|r| r.sections[si].1).collect();
                        let th_accs: Vec<f64> = own.iter().map(|r| r.sections[si].2).collect();
                        let (time_mean, time_sd) = mean_sd(&times);
                        let (t_acc_mean, t_acc_sd) = mean_sd(&t_accs);
                        let (th_acc_mean, th_acc_sd) = mean_sd(&th_accs);
                        *slot = SectionStats {
                            time_mean,
                            time_sd,
                            t_acc_mean,
                            t_acc_sd,
                            th_acc_mean,
                            th_acc_sd,
                            n: own.len(),
                        };
                    }
                    let votes = group_records.iter().filter(|r| r.vote == arm).count() as f64;
                    ArmReport {
                        name: group.arms[arm].name.clone(),
                        sections,
                        preferred: votes / group_records.len().max(1) as f64,
                    }
                })
                .collect();
            TaskGroupReport {
                group: group.name.clone(),
                arms: [arms[0].clone(), arms[1].clone()],
            }
        })
        .collect()
}

/// Simulate `cfg.subjects` subjects under one master seed, appending their
/// records per group.
fn simulate_subjects(
    answers: &AnswerSet,
    groups: &[TaskGroup],
    cfg: &StudyConfig,
    master_seed: u64,
    records: &mut [Vec<SubjectRecord>],
) {
    for s in 0..cfg.subjects {
        let method_first = s % 2 == 0;
        let assignment_bits = (s / 2) % 8;
        let mut subject =
            SubjectModel::new(child_seed(master_seed, &format!("subject-{s}")), cfg.params);
        let mut order_rng = seeded(child_seed(master_seed, &format!("order-{s}")));
        // Sequence: [method, k, D] or [k, D, method] (§8.1); the learning
        // effect shows up as a mild speed-up on later groups (App. A.10).
        let sequence: [usize; 3] = if method_first { [0, 1, 2] } else { [1, 2, 0] };
        for (position, &gi) in sequence.iter().enumerate() {
            let arm = (assignment_bits >> gi) & 1;
            let time_multiplier = 1.0 - 0.06 * position as f64;
            let sections = run_subject_on_group(
                answers,
                &groups[gi],
                arm,
                &mut subject,
                &mut order_rng,
                time_multiplier,
            );
            let probes = &groups[gi].question_pool;
            let vote = subject.prefer(
                answers,
                groups[gi].l,
                [&groups[gi].arms[0], &groups[gi].arms[1]],
                probes,
            );
            records[gi].push(SubjectRecord {
                arm,
                method_first,
                sections,
                vote,
            });
        }
    }
}

/// Run the whole study against one answer relation, under the single
/// master seed `cfg.seed`.
///
/// The headline deltas are noisy at 16 subjects: one stream can invert
/// them. Conclusions should come from [`run_study_averaged`], which pools
/// several master seeds.
pub fn run_study(answers: &AnswerSet, cfg: &StudyConfig) -> Result<StudyReport> {
    run_study_averaged(answers, cfg, &[cfg.seed])
}

/// Run the study once per master seed — fresh question pools and subject
/// streams each time, the same (seed-independent) summaries throughout —
/// and aggregate all `seeds.len() × cfg.subjects` subject records into one
/// report. With ≥ 5 seeds the §8.4 conclusions no longer depend on any
/// single simulated stream.
pub fn run_study_averaged(
    answers: &AnswerSet,
    cfg: &StudyConfig,
    seeds: &[u64],
) -> Result<StudyReport> {
    if cfg.subjects == 0 {
        return Err(QagError::param("the study needs at least one subject"));
    }
    let [first, rest @ ..] = seeds else {
        return Err(QagError::param("the study needs at least one master seed"));
    };
    let mut groups = build_groups(answers, cfg, *first)?;
    let mut records: Vec<Vec<SubjectRecord>> = vec![Vec::new(); groups.len()];
    simulate_subjects(answers, &groups, cfg, *first, &mut records);
    for &seed in rest {
        refresh_pools(answers, &mut groups, seed)?;
        simulate_subjects(answers, &groups, cfg, seed, &mut records);
    }

    Ok(StudyReport {
        table1: aggregate(&groups, &records, false),
        table2: aggregate(&groups, &records, true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_datagen::synthetic::{answer_set, SyntheticConfig};

    fn study_answers() -> AnswerSet {
        answer_set(&SyntheticConfig {
            boost: 2.0,
            ..SyntheticConfig::new(300, 4, 77)
        })
        .unwrap()
    }

    fn small_cfg() -> StudyConfig {
        StudyConfig {
            subjects: 16,
            seed: 9,
            method_group: (50, 10, 1),
            k_group: (30, 1, 5, 10),
            d_group: (10, 7, 1, 3),
            ..Default::default()
        }
    }

    #[test]
    fn full_protocol_runs_and_has_shape() {
        let s = study_answers();
        let report = run_study(&s, &small_cfg()).unwrap();
        assert_eq!(report.table1.len(), 3);
        assert_eq!(report.table2.len(), 3);
        for g in &report.table1 {
            let pref_sum = g.arms[0].preferred + g.arms[1].preferred;
            assert!(
                (pref_sum - 1.0).abs() < 1e-9,
                "votes must partition: {pref_sum}"
            );
            for arm in &g.arms {
                for sec in &arm.sections {
                    assert!(sec.n == 8, "balanced assignment gives 8 subjects per arm");
                    assert!(sec.time_mean > 0.0);
                    assert!((0.0..=1.0).contains(&sec.t_acc_mean));
                    assert!((0.0..=1.0).contains(&sec.th_acc_mean));
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = study_answers();
        let a = run_study(&s, &small_cfg()).unwrap();
        let b = run_study(&s, &small_cfg()).unwrap();
        assert_eq!(
            a.table1[0].arms[0].sections[0].time_mean,
            b.table1[0].arms[0].sections[0].time_mean
        );
        assert_eq!(a.table1[2].arms[1].preferred, b.table1[2].arms[1].preferred);
    }

    #[test]
    fn our_method_wins_the_method_group() {
        // The paper's headline findings that are robust to question noise:
        // simpler patterns are faster to apply, survive memory better, and
        // win the preference vote.
        let s = study_answers();
        let report = run_study(&s, &small_cfg()).unwrap();
        let method = &report.table1[0];
        let (dt, ours) = (&method.arms[0], &method.arms[1]);
        assert!(
            ours.sections[0].time_mean < dt.sections[0].time_mean,
            "patterns-only time: ours {} vs dt {}",
            ours.sections[0].time_mean,
            dt.sections[0].time_mean
        );
        assert!(
            ours.sections[1].th_acc_mean + 0.1 >= dt.sections[1].th_acc_mean,
            "memory-only TH: ours {} vs dt {}",
            ours.sections[1].th_acc_mean,
            dt.sections[1].th_acc_mean
        );
        assert!(
            ours.preferred > dt.preferred,
            "preference: ours {} vs dt {}",
            ours.preferred,
            dt.preferred
        );
    }

    #[test]
    fn patterns_members_is_most_accurate_section() {
        let s = study_answers();
        let report = run_study(&s, &small_cfg()).unwrap();
        for g in &report.table1 {
            for arm in &g.arms {
                assert!(
                    arm.sections[2].th_acc_mean + 0.05 >= arm.sections[0].th_acc_mean,
                    "{}/{}: members {} vs patterns {}",
                    g.group,
                    arm.name,
                    arm.sections[2].th_acc_mean,
                    arm.sections[0].th_acc_mean
                );
            }
        }
    }

    #[test]
    fn memory_is_fastest_section() {
        let s = study_answers();
        let report = run_study(&s, &small_cfg()).unwrap();
        for g in &report.table1 {
            for arm in &g.arms {
                assert!(
                    arm.sections[1].time_mean < arm.sections[0].time_mean,
                    "{}/{}: memory should be fastest",
                    g.group,
                    arm.name
                );
            }
        }
    }

    #[test]
    fn render_mentions_all_groups() {
        let s = study_answers();
        let report = run_study(&s, &small_cfg()).unwrap();
        let text = report.render();
        assert!(text.contains("varying-method"));
        assert!(text.contains("varying-k"));
        assert!(text.contains("varying-D"));
        assert!(text.contains("Table 2"));
        assert!(text.contains("preferred"));
    }

    #[test]
    fn averaged_study_pools_subjects_across_seeds() {
        let s = study_answers();
        let report = run_study_averaged(&s, &small_cfg(), &DEFAULT_STUDY_SEEDS).unwrap();
        assert_eq!(report.table1.len(), 3);
        for g in &report.table1 {
            let pref_sum = g.arms[0].preferred + g.arms[1].preferred;
            assert!((pref_sum - 1.0).abs() < 1e-9);
            for arm in &g.arms {
                for sec in &arm.sections {
                    assert_eq!(
                        sec.n,
                        8 * DEFAULT_STUDY_SEEDS.len(),
                        "each seed contributes 8 subjects per arm"
                    );
                }
            }
        }
        // Table 2 pools the method-first half of every seed.
        for g in &report.table2 {
            for arm in &g.arms {
                assert_eq!(arm.sections[0].n, 4 * DEFAULT_STUDY_SEEDS.len());
            }
        }
    }

    #[test]
    fn averaged_headline_conclusions_hold_for_disjoint_seed_sets() {
        // The point of averaging: two unrelated 5-seed sets must agree on
        // the §8.4 headline conclusions, with no hand-picked stream.
        let s = study_answers();
        for seeds in [&[11u64, 23, 35, 47, 59][..], &[101, 211, 307, 401, 503][..]] {
            let report = run_study_averaged(&s, &small_cfg(), seeds).unwrap();
            let method = &report.table1[0];
            let (dt, ours) = (&method.arms[0], &method.arms[1]);
            assert!(
                ours.sections[0].time_mean < dt.sections[0].time_mean,
                "{seeds:?}: patterns-only time"
            );
            assert!(ours.preferred > dt.preferred, "{seeds:?}: preference");
        }
    }

    #[test]
    fn single_seed_averaged_equals_run_study() {
        let s = study_answers();
        let cfg = small_cfg();
        let a = run_study(&s, &cfg).unwrap();
        let b = run_study_averaged(&s, &cfg, &[cfg.seed]).unwrap();
        assert_eq!(
            a.table1[0].arms[0].sections[0].time_mean,
            b.table1[0].arms[0].sections[0].time_mean
        );
        assert_eq!(a.table1[2].arms[1].preferred, b.table1[2].arms[1].preferred);
    }

    #[test]
    fn empty_seed_set_rejected() {
        let s = study_answers();
        assert!(run_study_averaged(&s, &small_cfg(), &[]).is_err());
    }

    #[test]
    fn too_small_relation_is_rejected() {
        let tiny = answer_set(&SyntheticConfig::new(20, 3, 5)).unwrap();
        // L = 50 > n = 20: summarizer construction fails.
        assert!(run_study(&tiny, &small_cfg()).is_err());
    }
}
