//! Simulated user study (paper §8 / App. A.9, Tables 1–2).
//!
//! The original study put 16 human subjects through three task groups
//! (varying-method, varying-k, varying-D), each with three question
//! sections (patterns-only, memory-only, patterns+members), measuring
//! time per question, T-/TH-accuracy, and a final preference vote.
//!
//! **Substitution (documented in DESIGN.md):** humans are replaced by a
//! parameterized subject model whose behaviour is driven by the *pattern
//! complexity* of the summaries it reads — the mechanism the paper itself
//! credits for its findings ("thanks to the simplicity of our patterns by
//! design", §8.4):
//!
//! * inspection **time** grows with the complexity of the consulted items;
//! * **memory** recall decays with item complexity and count;
//! * **patterns+members** lookups are nearly perfect but slow;
//! * the **preference vote** trades off experienced accuracy against
//!   complexity.
//!
//! The harness reproduces the full protocol — balanced assignment of
//! working sets, both task-group sequencings (Table 1 aggregates all
//! subjects; Table 2 the method-first half), per-section metrics, and the
//! preference row.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod category;
pub mod harness;
pub mod subject;
pub mod summary;

pub use category::{categorize, Category};
pub use harness::{
    run_study, run_study_averaged, ArmReport, SectionStats, StudyConfig, StudyReport,
    TaskGroupReport, DEFAULT_STUDY_SEEDS,
};
pub use subject::{SubjectModel, SubjectParams};
pub use summary::{Summary, SummaryItem};
