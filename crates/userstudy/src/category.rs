//! The three-way classification task of §8.1.

use qagview_lattice::{AnswerSet, TupleId};

/// Question categories: "top" (within the top `L`), "high" (at or above the
/// overall average but outside the top `L`), "low" (below average).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Within the top `L` of the ranking.
    Top,
    /// Value ≥ the overall mean, but not top.
    High,
    /// Value below the overall mean.
    Low,
}

/// Ground-truth category of tuple `t` for coverage level `l`.
pub fn categorize(answers: &AnswerSet, l: usize, t: TupleId) -> Category {
    if (t as usize) < l {
        Category::Top
    } else if answers.val(t) >= answers.mean_val() {
        Category::High
    } else {
        Category::Low
    }
}

/// Category implied by a value alone (summaries are labeled this way).
pub fn category_of_value(answers: &AnswerSet, l: usize, value: f64) -> Category {
    let top_threshold = if l > 0 && l <= answers.len() {
        answers.val(l as u32 - 1)
    } else {
        f64::INFINITY
    };
    if value >= top_threshold {
        Category::Top
    } else if value >= answers.mean_val() {
        Category::High
    } else {
        Category::Low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into()]);
        b.push(&["p"], 10.0).unwrap();
        b.push(&["q"], 8.0).unwrap();
        b.push(&["r"], 6.0).unwrap(); // mean = 6.3
        b.push(&["s"], 4.0).unwrap();
        b.push(&["t"], 3.5).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn rank_beats_value_for_top() {
        let s = answers();
        assert_eq!(categorize(&s, 2, 0), Category::Top);
        assert_eq!(categorize(&s, 2, 1), Category::Top);
        assert_eq!(categorize(&s, 2, 2), Category::Low); // 6.0 < 6.3
        assert_eq!(categorize(&s, 3, 3), Category::Low);
    }

    #[test]
    fn high_band_between_mean_and_top() {
        let s = answers();
        // L = 1: rank 2 (8.0) is above the mean but outside the top.
        assert_eq!(categorize(&s, 1, 1), Category::High);
    }

    #[test]
    fn value_categorization_uses_thresholds() {
        let s = answers();
        assert_eq!(category_of_value(&s, 2, 9.0), Category::Top);
        assert_eq!(category_of_value(&s, 2, 7.0), Category::High);
        assert_eq!(category_of_value(&s, 2, 5.0), Category::Low);
    }
}
