//! The parameterized simulated subject.
//!
//! Every behaviour is a function of what the paper identifies as the causal
//! driver — pattern complexity — plus calibrated noise. The defaults were
//! chosen so the simulated magnitudes land in the paper's ranges (tens of
//! seconds per patterns question, single-digit seconds from memory,
//! accuracies in the 0.6–0.95 band); the *comparative* structure emerges
//! from the model, not from per-arm tuning.

use crate::category::{categorize, Category};
use crate::summary::{Summary, SummaryItem};
use qagview_common::rng::seeded;
use qagview_lattice::{AnswerSet, TupleId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Behavioural parameters of the subject model.
#[derive(Debug, Clone, Copy)]
pub struct SubjectParams {
    /// Probability of misreading a matched item's label by one band.
    pub confusion: f64,
    /// Base recall probability for a summary item (memory section).
    pub recall_base: f64,
    /// Recall penalty per unit of item complexity.
    pub recall_complexity_penalty: f64,
    /// Recall penalty per additional summary item.
    pub recall_count_penalty: f64,
    /// Probability a member-list lookup yields the true category.
    pub member_lookup_accuracy: f64,
    /// Seconds: patterns-only base time per question.
    pub time_base_patterns: f64,
    /// Seconds per unit of scanned pattern complexity.
    pub time_per_complexity: f64,
    /// Seconds: memory-only base time.
    pub time_base_memory: f64,
    /// Memory scanning is faster than visual scanning by this factor.
    pub time_per_complexity_memory_factor: f64,
    /// Seconds: patterns+members base time.
    pub time_base_members: f64,
    /// Seconds per member row scanned.
    pub time_per_member: f64,
    /// Gaussian-ish time noise amplitude (seconds).
    pub time_noise: f64,
}

impl Default for SubjectParams {
    fn default() -> Self {
        SubjectParams {
            confusion: 0.12,
            recall_base: 0.98,
            recall_complexity_penalty: 0.055,
            recall_count_penalty: 0.012,
            member_lookup_accuracy: 0.96,
            time_base_patterns: 8.0,
            time_per_complexity: 1.6,
            time_base_memory: 4.5,
            time_per_complexity_memory_factor: 0.3,
            time_base_members: 12.0,
            time_per_member: 0.06,
            time_noise: 2.0,
        }
    }
}

/// One simulated participant.
#[derive(Debug)]
pub struct SubjectModel {
    params: SubjectParams,
    rng: StdRng,
}

impl SubjectModel {
    /// Create a subject with deterministic behaviour for `seed`.
    pub fn new(seed: u64, params: SubjectParams) -> Self {
        SubjectModel {
            params,
            rng: seeded(seed),
        }
    }

    fn noise(&mut self, amplitude: f64) -> f64 {
        (self.rng.random::<f64>() - 0.5) * 2.0 * amplitude
    }

    fn shift_band(&mut self, c: Category) -> Category {
        match c {
            Category::Top => Category::High,
            Category::Low => Category::High,
            Category::High => {
                if self.rng.random::<f64>() < 0.5 {
                    Category::Top
                } else {
                    Category::Low
                }
            }
        }
    }

    /// Scan items in display order; return `(first match, scanned
    /// complexity)`.
    fn scan<'a>(&self, items: &'a [SummaryItem], codes: &[u32]) -> (Option<&'a SummaryItem>, f64) {
        let mut scanned = 0.0;
        for item in items {
            scanned += item.matcher.complexity() as f64;
            if item.matcher.matches(codes) {
                return (Some(item), scanned);
            }
        }
        (None, scanned)
    }

    fn fallback_guess(&mut self) -> Category {
        // Summaries describe the high end; an unmatched tuple is probably
        // not top.
        let u = self.rng.random::<f64>();
        if u < 0.62 {
            Category::Low
        } else if u < 0.92 {
            Category::High
        } else {
            Category::Top
        }
    }

    fn read_label(&mut self, item: &SummaryItem) -> Category {
        if self.rng.random::<f64>() < self.params.confusion {
            self.shift_band(item.label)
        } else {
            item.label
        }
    }

    /// Patterns-only section: answer one question.
    pub fn answer_patterns_only(
        &mut self,
        answers: &AnswerSet,
        summary: &Summary,
        t: TupleId,
    ) -> (Category, f64) {
        let (matched, scanned) = self.scan(&summary.items, answers.tuple(t));
        let prediction = match matched {
            Some(item) => self.read_label(item),
            None => self.fallback_guess(),
        };
        let time = self.params.time_base_patterns
            + self.params.time_per_complexity * scanned
            + self.noise(self.params.time_noise);
        (prediction, time.max(1.0))
    }

    /// Sample the subset of the summary the subject can still recall.
    pub fn recalled_items(&mut self, summary: &Summary) -> Vec<SummaryItem> {
        let count_penalty = self.params.recall_count_penalty * summary.items.len() as f64;
        summary
            .items
            .iter()
            .filter(|item| {
                let p = (self.params.recall_base
                    - self.params.recall_complexity_penalty * item.matcher.complexity() as f64
                    - count_penalty)
                    .clamp(0.15, 0.99);
                self.rng.random::<f64>() < p
            })
            .cloned()
            .collect()
    }

    /// Memory-only section: answer against the recalled subset.
    pub fn answer_memory_only(
        &mut self,
        answers: &AnswerSet,
        recalled: &[SummaryItem],
        t: TupleId,
    ) -> (Category, f64) {
        let (matched, scanned) = self.scan(recalled, answers.tuple(t));
        let prediction = match matched {
            Some(item) => self.read_label(item),
            None => self.fallback_guess(),
        };
        let time = self.params.time_base_memory
            + self.params.time_per_complexity
                * self.params.time_per_complexity_memory_factor
                * scanned
            + self.noise(self.params.time_noise * 0.6);
        (prediction, time.max(0.5))
    }

    /// Patterns+members section: the subject may expand member lists.
    pub fn answer_with_members(
        &mut self,
        answers: &AnswerSet,
        l: usize,
        summary: &Summary,
        t: TupleId,
    ) -> (Category, f64) {
        let mut members_scanned = 0usize;
        let mut found = false;
        for item in &summary.items {
            if item.matcher.matches(answers.tuple(t)) {
                match item.members.iter().position(|&m| m == t) {
                    Some(pos) => {
                        members_scanned += pos + 1;
                        found = true;
                        break;
                    }
                    None => members_scanned += item.members.len(),
                }
            }
        }
        let truth = categorize(answers, l, t);
        let prediction = if found {
            if self.rng.random::<f64>() < self.params.member_lookup_accuracy {
                truth
            } else {
                self.shift_band(truth)
            }
        } else {
            // Not in any visible member list: almost certainly not top.
            if self.rng.random::<f64>() < 0.85 {
                if truth == Category::Top {
                    self.fallback_guess()
                } else {
                    truth
                }
            } else {
                self.fallback_guess()
            }
        };
        let scanned_complexity: f64 = summary
            .items
            .iter()
            .map(|i| i.matcher.complexity() as f64)
            .sum();
        let time = self.params.time_base_members
            + self.params.time_per_member * members_scanned as f64
            + 0.25 * scanned_complexity
            + self.noise(self.params.time_noise);
        (prediction, time.max(2.0))
    }

    /// Final preference vote between two working sets: experienced accuracy
    /// (noiseless oracle over the probe tuples) traded against complexity.
    pub fn prefer(
        &mut self,
        answers: &AnswerSet,
        l: usize,
        arms: [&Summary; 2],
        probes: &[TupleId],
    ) -> usize {
        let mut utility = [0.0f64; 2];
        for (i, summary) in arms.iter().enumerate() {
            let mut correct = 0usize;
            for &t in probes {
                let (matched, _) = self.scan(&summary.items, answers.tuple(t));
                let predicted = matched.map(|item| item.label);
                let truth = categorize(answers, l, t);
                let ok = match predicted {
                    Some(p) => {
                        // TH-style credit: exact band or adjacent top/high.
                        p == truth || (p != Category::Low && truth != Category::Low)
                    }
                    None => truth == Category::Low,
                };
                correct += usize::from(ok);
            }
            let accuracy = correct as f64 / probes.len().max(1) as f64;
            utility[i] =
                accuracy - 0.035 * summary.mean_complexity() - 0.012 * summary.items.len() as f64
                    + self.noise(0.16);
        }
        usize::from(utility[1] > utility[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use qagview_core::Summarizer;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> qagview_lattice::AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["x", "q"], 8.0).unwrap();
        b.push(&["x", "r"], 7.0).unwrap();
        b.push(&["y", "p"], 5.0).unwrap();
        b.push(&["y", "q"], 2.0).unwrap();
        b.push(&["z", "r"], 1.0).unwrap();
        b.finish().unwrap()
    }

    fn summary(l: usize, k: usize) -> (qagview_lattice::AnswerSet, Summary) {
        let s = answers();
        let sm = Summarizer::new(&s, l).unwrap();
        let sol = sm.hybrid(k, 1).unwrap();
        let summ = Summary::from_solution("ours", &s, l, &sol);
        (s, summ)
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, summ) = summary(3, 2);
        let mut a = SubjectModel::new(5, SubjectParams::default());
        let mut b = SubjectModel::new(5, SubjectParams::default());
        for t in 0..s.len() as u32 {
            assert_eq!(
                a.answer_patterns_only(&s, &summ, t),
                b.answer_patterns_only(&s, &summ, t)
            );
        }
    }

    #[test]
    fn zero_noise_subject_reads_labels_exactly() {
        let (s, summ) = summary(3, 1);
        let params = SubjectParams {
            confusion: 0.0,
            time_noise: 0.0,
            ..Default::default()
        };
        let mut subject = SubjectModel::new(1, params);
        // Tuple 0 is covered by the single top cluster; the label must be
        // returned verbatim.
        let (pred, time) = subject.answer_patterns_only(&s, &summ, 0);
        assert_eq!(pred, summ.items[0].label);
        assert!(time > 0.0);
    }

    #[test]
    fn member_lookup_is_nearly_perfect() {
        let (s, summ) = summary(3, 2);
        let params = SubjectParams {
            member_lookup_accuracy: 1.0,
            ..Default::default()
        };
        let mut subject = SubjectModel::new(2, params);
        for t in 0..3u32 {
            let (pred, _) = subject.answer_with_members(&s, 3, &summ, t);
            assert_eq!(pred, categorize(&s, 3, t), "tuple {t}");
        }
    }

    #[test]
    fn recall_degrades_with_complexity() {
        // A high-complexity synthetic summary loses more items than a
        // simple one under the same subject stream.
        let (s, simple) = summary(3, 2);
        let mut complex = simple.clone();
        for item in &mut complex.items {
            if let crate::summary::Matcher::Cluster(p) = &item.matcher {
                // Fake "complexity" by replacing with a rule of many predicates.
                let rule = qagview_baselines::decision_tree::Rule {
                    predicates: (0..6)
                        .map(|i| qagview_baselines::decision_tree::Predicate {
                            attr: i % p.arity(),
                            code: 0,
                            equals: i % 2 == 0,
                        })
                        .collect(),
                    positives: 1,
                    negatives: 0,
                    avg_val: 5.0,
                };
                item.matcher = crate::summary::Matcher::Rule(rule);
            }
        }
        let trials = 300;
        let mut kept_simple = 0usize;
        let mut kept_complex = 0usize;
        for seed in 0..trials {
            let mut subj = SubjectModel::new(seed, SubjectParams::default());
            kept_simple += subj.recalled_items(&simple).len();
            let mut subj = SubjectModel::new(seed, SubjectParams::default());
            kept_complex += subj.recalled_items(&complex).len();
        }
        assert!(
            kept_simple > kept_complex,
            "simple {kept_simple} vs complex {kept_complex}"
        );
        let _ = s;
    }

    #[test]
    fn preference_penalizes_complexity() {
        let (s, simple) = summary(3, 2);
        // A strictly more complex summary with identical labels/coverage.
        let mut complex = simple.clone();
        for item in &mut complex.items {
            let rule = qagview_baselines::decision_tree::Rule {
                predicates: (0..8)
                    .map(|i| qagview_baselines::decision_tree::Predicate {
                        attr: i % 2,
                        code: 0,
                        equals: false,
                    })
                    .collect(),
                positives: 1,
                negatives: 0,
                avg_val: 8.0,
            };
            item.matcher = crate::summary::Matcher::Rule(rule);
        }
        let probes: Vec<u32> = (0..s.len() as u32).collect();
        let mut votes_for_simple = 0usize;
        for seed in 0..100 {
            let mut subj = SubjectModel::new(seed, SubjectParams::default());
            if subj.prefer(&s, 3, [&simple, &complex], &probes) == 0 {
                votes_for_simple += 1;
            }
        }
        assert!(
            votes_for_simple > 60,
            "only {votes_for_simple}/100 preferred simple"
        );
    }
}
