//! Working sets shown to subjects: our clusters or decision-tree rules.

use crate::category::{category_of_value, Category};
use qagview_baselines::decision_tree::Rule;
use qagview_core::Solution;
use qagview_lattice::{AnswerSet, Pattern, TupleId};

/// How a summary item matches tuples.
#[derive(Debug, Clone)]
pub enum Matcher {
    /// A qagview cluster pattern.
    Cluster(Pattern),
    /// A decision-tree rule (conjunction of `=` / `≠` predicates).
    Rule(Rule),
}

impl Matcher {
    /// Whether the item matches a tuple.
    pub fn matches(&self, codes: &[u32]) -> bool {
        match self {
            Matcher::Cluster(p) => p.covers_tuple(codes),
            Matcher::Rule(r) => r.matches(codes),
        }
    }

    /// Cognitive complexity: concrete cells for a pattern, predicates for a
    /// rule (negations count double — "not Student" is harder to hold onto
    /// than "Student").
    pub fn complexity(&self) -> usize {
        match self {
            Matcher::Cluster(p) => p.arity() - p.level(),
            Matcher::Rule(r) => r
                .predicates
                .iter()
                .map(|p| if p.equals { 1 } else { 2 })
                .sum(),
        }
    }
}

/// One row of the working set.
#[derive(Debug, Clone)]
pub struct SummaryItem {
    /// The matcher shown to the subject.
    pub matcher: Matcher,
    /// The value category the item's average suggests.
    pub label: Category,
    /// Tuples listed under the item in the patterns+members section.
    pub members: Vec<TupleId>,
}

/// A complete working set.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Display name ("our method", "decision tree", "k = 5", …).
    pub name: String,
    /// The items, in display order.
    pub items: Vec<SummaryItem>,
}

impl Summary {
    /// Build from a qagview solution.
    pub fn from_solution(name: &str, answers: &AnswerSet, l: usize, solution: &Solution) -> Self {
        let items = solution
            .clusters
            .iter()
            .map(|c| SummaryItem {
                matcher: Matcher::Cluster(c.pattern.clone()),
                label: category_of_value(answers, l, c.avg()),
                members: c.members.clone(),
            })
            .collect();
        Summary {
            name: name.to_string(),
            items,
        }
    }

    /// Build from decision-tree positive-leaf rules.
    pub fn from_rules(name: &str, answers: &AnswerSet, l: usize, rules: &[Rule]) -> Self {
        let items = rules
            .iter()
            .map(|r| {
                let members: Vec<TupleId> = (0..answers.len() as u32)
                    .filter(|&t| r.matches(answers.tuple(t)))
                    .collect();
                SummaryItem {
                    matcher: Matcher::Rule(r.clone()),
                    label: category_of_value(answers, l, r.avg_val),
                    members,
                }
            })
            .collect();
        Summary {
            name: name.to_string(),
            items,
        }
    }

    /// Mean complexity over items (0 for an empty summary).
    pub fn mean_complexity(&self) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.items
            .iter()
            .map(|i| i.matcher.complexity() as f64)
            .sum::<f64>()
            / self.items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qagview_baselines::decision_tree::DecisionTree;
    use qagview_core::Summarizer;
    use qagview_lattice::AnswerSetBuilder;

    fn answers() -> AnswerSet {
        let mut b = AnswerSetBuilder::new(vec!["a".into(), "b".into()]);
        b.push(&["x", "p"], 9.0).unwrap();
        b.push(&["x", "q"], 8.0).unwrap();
        b.push(&["x", "r"], 7.0).unwrap();
        b.push(&["y", "p"], 3.0).unwrap();
        b.push(&["y", "q"], 2.0).unwrap();
        b.push(&["z", "r"], 1.0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn from_solution_labels_by_cluster_average() {
        let s = answers();
        let sm = Summarizer::new(&s, 3).unwrap();
        let sol = sm.hybrid(2, 1).unwrap();
        let summary = Summary::from_solution("ours", &s, 3, &sol);
        assert_eq!(summary.items.len(), sol.len());
        for item in &summary.items {
            assert!(matches!(item.matcher, Matcher::Cluster(_)));
            assert!(!item.members.is_empty());
        }
    }

    #[test]
    fn from_rules_collects_members() {
        let s = answers();
        let tree = DecisionTree::train(&s, 3, 3).unwrap();
        let summary = Summary::from_rules("dt", &s, 3, &tree.rules());
        assert_eq!(summary.items.len(), 1);
        assert_eq!(summary.items[0].members, vec![0, 1, 2]);
        assert_eq!(summary.items[0].label, Category::Top);
    }

    #[test]
    fn negated_predicates_cost_more_complexity() {
        let rule = Rule {
            predicates: vec![
                qagview_baselines::decision_tree::Predicate {
                    attr: 0,
                    code: 1,
                    equals: true,
                },
                qagview_baselines::decision_tree::Predicate {
                    attr: 1,
                    code: 2,
                    equals: false,
                },
            ],
            positives: 1,
            negatives: 0,
            avg_val: 5.0,
        };
        assert_eq!(Matcher::Rule(rule).complexity(), 3);
        let pattern = Matcher::Cluster(Pattern::new(vec![1, qagview_lattice::STAR]));
        assert_eq!(pattern.complexity(), 1);
    }

    #[test]
    fn mean_complexity() {
        let s = answers();
        let sm = Summarizer::new(&s, 3).unwrap();
        let sol = sm.hybrid(2, 0).unwrap();
        let summary = Summary::from_solution("ours", &s, 3, &sol);
        assert!(summary.mean_complexity() > 0.0);
        assert!(summary.mean_complexity() <= 2.0);
    }
}
